// hetps_train — command-line front end for the library.
//
//   hetps_train train    --data=train.libsvm --model=out.model
//                        [--loss=logistic|hinge|squared] [--rule=ssp|con|dyn]
//                        [--protocol=bsp|asp|ssp] [--staleness=3]
//                        [--workers=4] [--servers=2] [--clocks=20]
//                        [--partitions=2] [--scheme=range|hash|rangehash]
//                        [--update_filter=0] [--lr=0.3] [--decay] [--l2=1e-4]
//                        [--batch-fraction=0.1] [--synthetic=url|ctr]
//                        [--push_window=0] [--push_parallelism=1]
//                        [--runtime=threaded|rpc]
//     rpc runtime only:  [--serve_status=/tmp/hetps.sock]
//                        [--heartbeat_timeout=0] [--evict_dead_workers=1]
//                        [--rebalance] [--compute_delay=0,0.05,...]
//   hetps_train evaluate --data=test.libsvm --model=in.model
//   hetps_train predict  --data=test.libsvm --model=in.model [--out=preds.txt]
//   hetps_train simulate [--hl=2] [--workers=30] [--servers=10]
//                        [--rule=dyn] [--staleness=3] [--lr=2.0]
//                        [--clocks=60] [--tolerance=0.4]
//                        [--partitions=1] [--scheme=range|hash|rangehash]
//                        [--update_filter=0] [--push_window=-1]
//                        [--kill_worker=-1] [--kill_at_clock=-1]
//                        [--heartbeat_timeout=0] [--evict_dead_workers=1]
//                        [--rebalance] [--straggler_threshold=1.2]
//                        [--rebalance_hysteresis=3]
//                        [--reassign_fraction=0.05]
//                        [--slow_worker=-1] [--slow_from_clock=0]
//                        [--slow_until_clock=0] [--slow_multiplier=1]
//   hetps_train check-obs --metrics=metrics.json [--trace=trace.json]
//                         [--timeseries=timeseries.json]
//                         [--flightrec=flightrec.json]
//                         [--status=status.json]
//   hetps_train inspect  [--timeseries=timeseries.json]
//                        [--metrics=metrics.json]
//                        [--flightrec=flightrec.json]   (at least one)
//   hetps_train dump-status --bus=/tmp/hetps.sock [--out=status.json]
//                           [--scrape_out=metrics.prom]
//   hetps_train top      --bus=/tmp/hetps.sock [--interval_ms=500]
//                        [--iters=0]
//   hetps_train obs-ctl  --bus=/tmp/hetps.sock [--trace=on|off]
//                        [--exemplars=on|off]
//                        [--slow_us=N [--slow_op=push|pull|...|all]]
//                        [--flight_dump]
//
// The last three talk to a *running* `train --runtime=rpc
// --serve_status=SOCK` process over its introspection gateway:
// dump-status writes one hetps.status.v1 snapshot (and optionally a
// Prometheus scrape), top renders a refreshing cluster dashboard, and
// obs-ctl flips trace sampling / histogram exemplars / slow-request
// thresholds and triggers flight-recorder dumps in the live process.
//
// Observability (train and simulate): --metrics_out=metrics.json writes
// a metric snapshot (counters/gauges/histograms incl. staleness and
// compute-vs-wait breakdown), --trace_out=trace.json a Chrome trace
// loadable in chrome://tracing / Perfetto (with causal client->server
// flow arrows on RPCs). --timeseries_out=timeseries.json records
// windowed per-clock metric deltas (per-worker wait/compute over time);
// --flightrec_out=flightrec.json arms the black-box flight recorder
// (evictions, cmin repairs, faults, retries), dumped on eviction /
// abnormal exit and at end of run. --report_every=N re-writes
// metrics_out every N worker-0 clocks; --trace_buffer_kb bounds the
// per-thread trace ring; --flightrec_events bounds the flight ring.
// `check-obs` validates such files (CI smoke); `inspect` renders a
// human-readable heterogeneity report from them.
//
// `--synthetic=url|ctr` generates a dataset instead of reading --data,
// which makes the tool usable out of the box.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/consolidation.h"
#include "core/learning_rate.h"
#include "data/libsvm_io.h"
#include "data/synthetic.h"
#include "engine/distributed_trainer.h"
#include "models/linear_model.h"
#include "net/ps_service.h"
#include "net/serializer.h"
#include "net/status_gateway.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_reporter.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "ps/status.h"
#include "sim/event_sim.h"
#include "util/flags.h"
#include "util/logging.h"

namespace hetps {
namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

Result<Dataset> LoadData(const FlagParser& flags) {
  const std::string synthetic = flags.GetString("synthetic", "");
  if (!synthetic.empty()) {
    const uint64_t seed = static_cast<uint64_t>(
        flags.GetInt("seed", 42).value());
    Dataset d = synthetic == "ctr"
                    ? GenerateSynthetic(CtrLikeConfig(1.0, seed))
                    : GenerateSynthetic(UrlLikeConfig(1.0, seed));
    Rng rng(seed + 1);
    d.Shuffle(&rng);
    return d;
  }
  const std::string path = flags.GetString("data", "");
  if (path.empty()) {
    return Status::InvalidArgument(
        "pass --data=<libsvm file> or --synthetic=url|ctr");
  }
  return ReadLibSvmFile(path);
}

/// Reads the observability flags, primes the global metric/trace state,
/// and hands back a RunReporter (null when no output was requested).
/// `run_info` annotates metrics.json's "run" object.
std::unique_ptr<RunReporter> MakeReporter(
    const FlagParser& flags,
    std::vector<std::pair<std::string, std::string>> run_info) {
  RunReporterOptions opts;
  opts.metrics_out = flags.GetString("metrics_out", "");
  opts.trace_out = flags.GetString("trace_out", "");
  opts.timeseries_out = flags.GetString("timeseries_out", "");
  opts.flightrec_out = flags.GetString("flightrec_out", "");
  opts.report_every =
      static_cast<int>(flags.GetInt("report_every", 0).value());
  const int trace_kb =
      static_cast<int>(flags.GetInt("trace_buffer_kb", 256).value());
  const int flightrec_events =
      static_cast<int>(flags.GetInt("flightrec_events", 4096).value());
  if (opts.metrics_out.empty() && opts.trace_out.empty() &&
      opts.timeseries_out.empty() && opts.flightrec_out.empty()) {
    return nullptr;
  }
  // One run per process invocation: start from clean global state so the
  // files describe this run only.
  GlobalMetrics().ResetValues();
  // Pre-register the RPC-layer fault/retry counters so metrics.json
  // always carries them (zero for runs that never touch the bus) —
  // dashboards can key on them unconditionally.
  GlobalMetrics().counter("bus.delivered");
  GlobalMetrics().counter("bus.fault.dropped_requests");
  GlobalMetrics().counter("bus.fault.dropped_responses");
  GlobalMetrics().counter("bus.fault.duplicated_requests");
  GlobalMetrics().counter("bus.fault.delayed_requests");
  GlobalMetrics().counter("rpc.client_retries");
  if (!opts.trace_out.empty()) {
    TraceRecorder::Global().Clear();
    TraceOptions trace_opts;
    trace_opts.buffer_kb_per_thread =
        trace_kb > 0 ? static_cast<size_t>(trace_kb) : 256;
    TraceRecorder::Global().Start(trace_opts);
  }
  if (!opts.flightrec_out.empty()) {
    FlightRecorder::Global().Clear();
    FlightRecorder::Global().Start(
        flightrec_events > 0 ? static_cast<size_t>(flightrec_events)
                             : 4096);
  }
  opts.run_info = std::move(run_info);
  return std::make_unique<RunReporter>(std::move(opts));
}

int FinishReport(RunReporter* reporter) {
  if (reporter == nullptr) return 0;
  const Status st = reporter->WriteFinal();
  TraceRecorder::Global().Stop();
  FlightRecorder::Global().Stop();
  if (!st.ok()) return Fail(st);
  if (!reporter->options().metrics_out.empty()) {
    std::printf("metrics written to %s\n",
                reporter->options().metrics_out.c_str());
  }
  if (!reporter->options().trace_out.empty()) {
    std::printf("trace written to %s\n",
                reporter->options().trace_out.c_str());
  }
  if (!reporter->options().timeseries_out.empty()) {
    std::printf("timeseries written to %s\n",
                reporter->options().timeseries_out.c_str());
  }
  if (!reporter->options().flightrec_out.empty()) {
    std::printf("flight record written to %s\n",
                reporter->options().flightrec_out.c_str());
  }
  return 0;
}

PartitionScheme ParseScheme(const FlagParser& flags, Status* st) {
  const std::string scheme = flags.GetString("scheme", "rangehash");
  if (scheme == "range") return PartitionScheme::kRange;
  if (scheme == "hash") return PartitionScheme::kHash;
  if (scheme == "rangehash") return PartitionScheme::kRangeHash;
  *st = Status::InvalidArgument("unknown --scheme: " + scheme);
  return PartitionScheme::kRangeHash;
}

SyncPolicy ParseSync(const FlagParser& flags, Status* st) {
  const std::string protocol = flags.GetString("protocol", "ssp");
  const int s =
      static_cast<int>(flags.GetInt("staleness", 3).value());
  if (protocol == "bsp") return SyncPolicy::Bsp();
  if (protocol == "asp") return SyncPolicy::Asp();
  if (protocol == "ssp") return SyncPolicy::Ssp(s);
  *st = Status::InvalidArgument("unknown --protocol: " + protocol);
  return SyncPolicy::Ssp(s);
}

/// Parses "--compute_delay=0,0.05,0.1" into per-worker seconds.
Result<std::vector<double>> ParseDelayList(const std::string& text) {
  std::vector<double> delays;
  if (text.empty()) return delays;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0' || v < 0.0) {
      return Status::InvalidArgument("bad --compute_delay entry: " + item);
    }
    delays.push_back(v);
  }
  return delays;
}

/// `train --runtime=rpc`: the fully-distributed execution path — worker
/// threads talk to the PS service over the serialized message bus, with
/// the liveness / rebalancing planes and (via --serve_status) the live
/// introspection gateway.
int RunTrainRpc(const FlagParser& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());

  DistributedTrainerOptions opts;
  Status sync_st;
  opts.sync = ParseSync(flags, &sync_st);
  if (!sync_st.ok()) return Fail(sync_st);
  opts.max_clocks = static_cast<int>(flags.GetInt("clocks", 20).value());
  opts.l2 = flags.GetDouble("l2", 1e-4).value();
  opts.batch_fraction = flags.GetDouble("batch-fraction", 0.1).value();
  opts.num_workers =
      static_cast<int>(flags.GetInt("workers", 4).value());
  opts.num_servers =
      static_cast<int>(flags.GetInt("servers", 2).value());
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 42).value());
  opts.push_window =
      static_cast<int>(flags.GetInt("push_window", 0).value());
  opts.push_parallelism =
      static_cast<int>(flags.GetInt("push_parallelism", 1).value());
  opts.heartbeat_timeout =
      flags.GetDouble("heartbeat_timeout", 0.0).value();
  opts.evict_dead_workers = flags.GetBool("evict_dead_workers", true);
  opts.rebalance = flags.GetBool("rebalance", false);
  opts.straggler_threshold =
      flags.GetDouble("straggler_threshold", 1.2).value();
  opts.rebalance_hysteresis = static_cast<int>(
      flags.GetInt("rebalance_hysteresis", 3).value());
  opts.reassign_fraction =
      flags.GetDouble("reassign_fraction", 0.05).value();
  auto delays = ParseDelayList(flags.GetString("compute_delay", ""));
  if (!delays.ok()) return Fail(delays.status());
  opts.injected_compute_delay = std::move(delays.value());
  opts.serve_status_path = flags.GetString("serve_status", "");

  auto rule = MakeConsolidationRule(flags.GetString("rule", "dyn"));
  auto loss = MakeLoss(flags.GetString("loss", "logistic"));
  const double lr = flags.GetDouble("lr", 0.3).value();
  std::unique_ptr<LearningRateSchedule> sched;
  if (flags.GetBool("decay", false)) {
    sched = std::make_unique<DecayedRate>(lr);
  } else {
    sched = std::make_unique<FixedRate>(lr);
  }

  std::unique_ptr<RunReporter> reporter = MakeReporter(
      flags, {{"command", "train"},
              {"runtime", "rpc"},
              {"rule", flags.GetString("rule", "dyn")},
              {"protocol", flags.GetString("protocol", "ssp")},
              {"workers", std::to_string(opts.num_workers)},
              {"servers", std::to_string(opts.num_servers)},
              {"clocks", std::to_string(opts.max_clocks)}});
  if (reporter != nullptr) {
    RunReporter* rep = reporter.get();
    opts.on_epoch = [rep](int epoch) { rep->OnEpoch(epoch); };
  }

  auto result =
      TrainDistributed(data.value(), *loss, *sched, *rule, opts);
  if (!result.ok()) return Fail(result.status());
  const DistributedTrainResult& r = result.value();
  std::printf("trained (rpc runtime): objective %.4f over %d clocks, "
              "%lld messages, %lld retries\n",
              r.final_objective, opts.max_clocks,
              static_cast<long long>(r.messages),
              static_cast<long long>(r.rpc_retries));
  if (!r.evicted_workers.empty()) {
    std::printf("liveness: evicted=%zu failed_over_examples=%lld\n",
                r.evicted_workers.size(),
                static_cast<long long>(r.examples_failed_over));
  }
  if (opts.rebalance) {
    std::printf("rebalance: examples_moved=%lld examples_returned=%lld "
                "migrations=%lld\n",
                static_cast<long long>(r.examples_rebalanced),
                static_cast<long long>(r.examples_returned),
                static_cast<long long>(r.lb_migrations));
  }
  return FinishReport(reporter.get());
}

int RunTrain(const FlagParser& flags) {
  const std::string runtime = flags.GetString("runtime", "threaded");
  if (runtime == "rpc") return RunTrainRpc(flags);
  if (runtime != "threaded") {
    return Fail(Status::InvalidArgument("unknown --runtime: " + runtime));
  }
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());

  LinearModelConfig cfg;
  cfg.loss = flags.GetString("loss", "logistic");
  cfg.rule = flags.GetString("rule", "dyn");
  Status sync_st;
  cfg.sync = ParseSync(flags, &sync_st);
  if (!sync_st.ok()) return Fail(sync_st);
  cfg.num_workers =
      static_cast<int>(flags.GetInt("workers", 4).value());
  cfg.num_servers =
      static_cast<int>(flags.GetInt("servers", 2).value());
  cfg.partitions_per_server =
      static_cast<int>(flags.GetInt("partitions", 2).value());
  Status scheme_st;
  cfg.scheme = ParseScheme(flags, &scheme_st);
  if (!scheme_st.ok()) return Fail(scheme_st);
  cfg.max_clocks = static_cast<int>(flags.GetInt("clocks", 20).value());
  cfg.learning_rate = flags.GetDouble("lr", 0.3).value();
  cfg.decayed_rate = flags.GetBool("decay", false);
  cfg.l2 = flags.GetDouble("l2", 1e-4).value();
  cfg.batch_fraction =
      flags.GetDouble("batch-fraction", 0.1).value();
  cfg.update_filter_epsilon =
      flags.GetDouble("update_filter", 0.0).value();
  // Push pipeline: --push_window=N overlaps pushes with compute
  // (0 = synchronous), --push_parallelism fans push application across
  // server shards (1 = serial, 0 = auto).
  cfg.push_window =
      static_cast<int>(flags.GetInt("push_window", 0).value());
  cfg.push_parallelism =
      static_cast<int>(flags.GetInt("push_parallelism", 1).value());
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 42).value());

  std::unique_ptr<RunReporter> reporter = MakeReporter(
      flags, {{"command", "train"},
              {"loss", cfg.loss},
              {"rule", cfg.rule},
              {"protocol", flags.GetString("protocol", "ssp")},
              {"workers", std::to_string(cfg.num_workers)},
              {"servers", std::to_string(cfg.num_servers)},
              {"clocks", std::to_string(cfg.max_clocks)}});
  if (reporter != nullptr) {
    RunReporter* rep = reporter.get();
    cfg.on_epoch = [rep](int epoch) { rep->OnEpoch(epoch); };
  }

  auto model = LinearModel::Train(data.value(), cfg);
  if (!model.ok()) return Fail(model.status());
  std::printf("trained %s/%s in %.2fs wall: objective %.4f, accuracy "
              "%.3f\n",
              cfg.loss.c_str(), cfg.rule.c_str(),
              model.value().train_stats().wall_seconds,
              model.value().Objective(data.value()),
              model.value().Accuracy(data.value()));
  const std::string out = flags.GetString("model", "");
  if (!out.empty()) {
    Status st = model.value().Save(out);
    if (!st.ok()) return Fail(st);
    std::printf("model written to %s\n", out.c_str());
  }
  return FinishReport(reporter.get());
}

Result<LinearModel> LoadModel(const FlagParser& flags) {
  const std::string path = flags.GetString("model", "");
  if (path.empty()) {
    return Status::InvalidArgument("pass --model=<file>");
  }
  return LinearModel::Load(path);
}

int RunEvaluate(const FlagParser& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());
  auto model = LoadModel(flags);
  if (!model.ok()) return Fail(model.status());
  std::printf("objective %.4f, accuracy %.3f over %zu examples\n",
              model.value().Objective(data.value()),
              model.value().Accuracy(data.value()),
              data.value().size());
  return 0;
}

int RunPredict(const FlagParser& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());
  auto model = LoadModel(flags);
  if (!model.ok()) return Fail(model.status());
  const std::string out_path = flags.GetString("out", "");
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      return Fail(Status::IOError("cannot open " + out_path));
    }
  }
  std::ostream& os = out_path.empty() ? std::cout : file;
  for (size_t i = 0; i < data.value().size(); ++i) {
    os << model.value().Predict(data.value().example(i).features)
       << '\n';
  }
  return 0;
}

int RunSimulate(const FlagParser& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());
  const double hl = flags.GetDouble("hl", 2.0).value();
  const int workers =
      static_cast<int>(flags.GetInt("workers", 30).value());
  const int servers =
      static_cast<int>(flags.GetInt("servers", 10).value());
  auto rule =
      MakeConsolidationRule(flags.GetString("rule", "dyn"));
  auto loss = MakeLoss(flags.GetString("loss", "logistic"));
  FixedRate sched(flags.GetDouble("lr", 2.0).value());
  SimOptions options;
  Status sync_st;
  options.sync = ParseSync(flags, &sync_st);
  if (!sync_st.ok()) return Fail(sync_st);
  options.max_clocks =
      static_cast<int>(flags.GetInt("clocks", 60).value());
  options.partitions_per_server =
      static_cast<int>(flags.GetInt("partitions", 1).value());
  Status scheme_st;
  options.scheme = ParseScheme(flags, &scheme_st);
  if (!scheme_st.ok()) return Fail(scheme_st);
  options.update_filter_epsilon =
      flags.GetDouble("update_filter", 0.0).value();
  // Push pipelining model: -1 = legacy unbounded overlap, 0 =
  // synchronous, >= 1 = bounded window (see SimOptions::push_window).
  options.push_window =
      static_cast<int>(flags.GetInt("push_window", -1).value());
  options.objective_tolerance =
      flags.GetDouble("tolerance", 0.4).value();
  options.l2 = flags.GetDouble("l2", 1e-4).value();
  // Liveness / failure injection (see DESIGN.md "Failure model & worker
  // eviction"): --kill_worker/--kill_at_clock crash-stop one worker,
  // --heartbeat_timeout arms eviction, --evict_dead_workers=0 shows the
  // stall instead.
  options.kill_worker =
      static_cast<int>(flags.GetInt("kill_worker", -1).value());
  if (options.kill_worker >= workers) {
    return Fail(Status::InvalidArgument(
        "--kill_worker=" + std::to_string(options.kill_worker) +
        " is out of range for --workers=" + std::to_string(workers)));
  }
  options.kill_at_clock =
      static_cast<int>(flags.GetInt("kill_at_clock", -1).value());
  options.heartbeat_timeout_seconds =
      flags.GetDouble("heartbeat_timeout", 0.0).value();
  options.evict_dead_workers = flags.GetBool("evict_dead_workers", true);
  // Load-balancing plane: --rebalance migrates examples off persistent
  // stragglers; --slow_worker/--slow_multiplier inject a transient
  // congestion episode to chase (see EXPERIMENTS.md).
  options.rebalance = flags.GetBool("rebalance", false);
  options.straggler_threshold =
      flags.GetDouble("straggler_threshold", 1.2).value();
  options.rebalance_hysteresis = static_cast<int>(
      flags.GetInt("rebalance_hysteresis", 3).value());
  options.reassign_fraction =
      flags.GetDouble("reassign_fraction", 0.05).value();
  options.slow_worker =
      static_cast<int>(flags.GetInt("slow_worker", -1).value());
  if (options.slow_worker >= workers) {
    return Fail(Status::InvalidArgument(
        "--slow_worker=" + std::to_string(options.slow_worker) +
        " is out of range for --workers=" + std::to_string(workers)));
  }
  options.slow_from_clock =
      static_cast<int>(flags.GetInt("slow_from_clock", 0).value());
  options.slow_until_clock =
      static_cast<int>(flags.GetInt("slow_until_clock", 0).value());
  options.slow_multiplier =
      flags.GetDouble("slow_multiplier", 1.0).value();
  if (options.kill_worker >= 0 &&
      options.heartbeat_timeout_seconds <= 0.0) {
    // A kill without the liveness plane stalls until max_sim_seconds;
    // bound the demonstration.
    options.max_sim_seconds =
        flags.GetDouble("max_sim_seconds", 600.0).value();
  }
  const ClusterConfig cluster =
      ClusterConfig::WithStragglers(workers, servers, hl, 0.2);
  std::unique_ptr<RunReporter> reporter = MakeReporter(
      flags, {{"command", "simulate"},
              {"rule", flags.GetString("rule", "dyn")},
              {"protocol", flags.GetString("protocol", "ssp")},
              {"workers", std::to_string(workers)},
              {"servers", std::to_string(servers)},
              {"hl", std::to_string(hl)}});
  if (reporter != nullptr) {
    RunReporter* rep = reporter.get();
    options.on_epoch = [rep](int epoch) { rep->OnEpoch(epoch); };
    if (rep->timeseries() != nullptr) {
      // The simulator stamps windows with virtual time (SnapshotAt);
      // the reporter must not also close wall-clock windows.
      options.timeseries = rep->timeseries();
      rep->UseExternalTimeSeriesClock();
    }
  }
  const SimResult r = RunSimulation(data.value(), cluster, *rule, sched,
                                    *loss, options);
  std::printf("%s\n", r.Summary().c_str());
  if (options.kill_worker >= 0 || r.workers_evicted > 0) {
    std::printf(
        "liveness: evicted=%d failed_over_examples=%lld "
        "blocked_at_end=%d\n",
        r.workers_evicted,
        static_cast<long long>(r.examples_failed_over),
        r.workers_blocked_at_end);
  }
  if (options.rebalance) {
    std::printf(
        "rebalance: examples_moved=%lld examples_returned=%lld "
        "migrations=%lld\n",
        static_cast<long long>(r.examples_rebalanced),
        static_cast<long long>(r.examples_returned),
        static_cast<long long>(r.rebalance_migrations));
  }
  return FinishReport(reporter.get());
}

// ---- Live-introspection clients (dump-status / top / obs-ctl) ----

/// One gateway round trip decoded through the PsService response
/// framing: status byte first, then a length-prefixed string — the
/// JSON/Prometheus body on success, the error message on failure.
/// (kObsControl acks are a bare status byte; the missing body reads as
/// empty.)
Result<std::string> GatewayCall(GatewayClient* client,
                                const std::vector<uint8_t>& request) {
  auto raw = client->Call(request);
  if (!raw.ok()) return raw.status();
  ByteReader reader(raw.value());
  uint8_t code = 0;
  HETPS_RETURN_NOT_OK(reader.ReadU8(&code));
  std::string body;
  (void)reader.ReadString(&body);
  if (code != 0) {
    return Status(static_cast<StatusCode>(code),
                  body.empty() ? "remote error" : body);
  }
  return body;
}

/// Maps `--slow_op` names onto wire opcodes; 0 is the service's
/// "all opcodes" wildcard, 255 flags an unknown name.
uint8_t OpByteFromName(const std::string& name) {
  static const std::map<std::string, uint8_t> kOps = {
      {"all", 0},          {"push", 1},
      {"pull", 2},         {"pull_range", 3},
      {"can_advance", 4},  {"stable_version", 5},
      {"pull_delta", 6},   {"layout", 7},
      {"report_clock", 8}, {"readmit", 9},
      {"push_columnar", 10}, {"status", 11},
      {"metrics_scrape", 12}, {"obs_control", 13}};
  const auto it = kOps.find(name);
  return it == kOps.end() ? 255 : it->second;
}

Status ConnectGateway(const FlagParser& flags, GatewayClient* client) {
  const std::string path = flags.GetString("bus", "");
  if (path.empty()) {
    return Status::InvalidArgument(
        "pass --bus=<socket path> (the --serve_status= path of the "
        "running train)");
  }
  return client->Connect(path);
}

/// `dump-status`: one kStatus snapshot from a live run, printed or
/// written to --out; --scrape_out additionally pulls a full Prometheus
/// scrape (kMetricsScrape mode 0) with any armed exemplars inline.
int RunDumpStatus(const FlagParser& flags) {
  GatewayClient client;
  Status conn = ConnectGateway(flags, &client);
  if (!conn.ok()) return Fail(conn);
  auto status_json =
      GatewayCall(&client, {static_cast<uint8_t>(PsOpCode::kStatus)});
  if (!status_json.ok()) return Fail(status_json.status());
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::printf("%s\n", status_json.value().c_str());
  } else {
    std::ofstream file(out);
    if (!file) return Fail(Status::IOError("cannot open " + out));
    file << status_json.value() << '\n';
    std::printf("status written to %s\n", out.c_str());
  }
  const std::string scrape_out = flags.GetString("scrape_out", "");
  if (!scrape_out.empty()) {
    auto scrape = GatewayCall(
        &client, {static_cast<uint8_t>(PsOpCode::kMetricsScrape), 0});
    if (!scrape.ok()) return Fail(scrape.status());
    std::ofstream file(scrape_out);
    if (!file) return Fail(Status::IOError("cannot open " + scrape_out));
    file << scrape.value();
    std::printf("scrape written to %s\n", scrape_out.c_str());
  }
  return 0;
}

/// `obs-ctl`: flips live observability knobs in a running train —
/// trace sampling, histogram exemplars, per-opcode slow-request
/// thresholds, on-demand flight-recorder dumps.
int RunObsCtl(const FlagParser& flags) {
  GatewayClient client;
  Status conn = ConnectGateway(flags, &client);
  if (!conn.ok()) return Fail(conn);
  bool did_anything = false;
  auto send = [&](const std::vector<uint8_t>& request,
                  const char* what) -> int {
    auto ack = GatewayCall(&client, request);
    if (!ack.ok()) return Fail(ack.status());
    std::printf("%s: ok\n", what);
    did_anything = true;
    return 0;
  };
  const uint8_t kCtl = static_cast<uint8_t>(PsOpCode::kObsControl);
  const std::string trace = flags.GetString("trace", "");
  if (!trace.empty()) {
    if (trace != "on" && trace != "off") {
      return Fail(Status::InvalidArgument("--trace must be on|off"));
    }
    const int rc = send({kCtl, 1, trace == "on" ? uint8_t{1} : uint8_t{0}},
                        trace == "on" ? "trace on" : "trace off");
    if (rc != 0) return rc;
  }
  const std::string exemplars = flags.GetString("exemplars", "");
  if (!exemplars.empty()) {
    if (exemplars != "on" && exemplars != "off") {
      return Fail(Status::InvalidArgument("--exemplars must be on|off"));
    }
    const int rc =
        send({kCtl, 2, exemplars == "on" ? uint8_t{1} : uint8_t{0}},
             exemplars == "on" ? "exemplars on" : "exemplars off");
    if (rc != 0) return rc;
  }
  const int64_t slow_us = flags.GetInt("slow_us", -1).value();
  if (slow_us >= 0) {
    const std::string op_name = flags.GetString("slow_op", "all");
    const uint8_t op = OpByteFromName(op_name);
    if (op == 255) {
      return Fail(Status::InvalidArgument("unknown --slow_op: " + op_name));
    }
    ByteWriter w;
    w.WriteU8(kCtl);
    w.WriteU8(3);
    w.WriteU8(op);
    w.WriteI64(slow_us);
    const int rc = send(w.TakeBuffer(),
                        ("slow threshold (" + op_name + ")").c_str());
    if (rc != 0) return rc;
  }
  if (flags.GetBool("flight_dump", false)) {
    const int rc = send({kCtl, 4}, "flight dump");
    if (rc != 0) return rc;
  }
  if (!did_anything) {
    return Fail(Status::InvalidArgument(
        "pass at least one of --trace= / --exemplars= / --slow_us= / "
        "--flight_dump"));
  }
  return 0;
}

double NumField(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr ? v->number_value : 0.0;
}

/// Renders one hetps.status.v1 snapshot as the `top` dashboard frame.
void RenderTopFrame(const JsonValue& doc, int iter) {
  const double cmin = NumField(doc, "cmin");
  const double cmax = NumField(doc, "cmax");
  const JsonValue* source = doc.Find("source");
  std::printf("hetps top — source=%s  t=%.1fs  frame %d\n",
              source != nullptr && source->is_string()
                  ? source->string_value.c_str()
                  : "?",
              NumField(doc, "ts_us") / 1e6, iter);
  std::printf(
      "clocks: cmin=%.0f cmax=%.0f  live %.0f/%.0f  blocked=%.0f  "
      "pushes=%.0f\n",
      cmin, cmax, NumField(doc, "num_live_workers"),
      NumField(doc, "num_workers"), NumField(doc, "blocked_workers"),
      NumField(doc, "total_pushes"));
  const JsonValue* push = doc.Find("push");
  if (push != nullptr && push->is_object()) {
    const double window = NumField(*push, "window");
    const double inflight = NumField(*push, "inflight");
    if (window >= 1.0) {
      // Occupied window slots — how much push transfer the pipeline is
      // currently hiding behind compute.
      std::printf("push: window=%.0f inflight=%.0f (overlap %.0f%%)\n",
                  window, inflight, 100.0 * inflight / window);
    } else {
      std::printf("push: synchronous (window=%.0f)\n", window);
    }
  }
  const JsonValue* reb = doc.Find("rebalance");
  if (reb != nullptr && reb->is_object()) {
    std::printf(
        "rebalance: moved=%.0f returned=%.0f migrations=%.0f\n",
        NumField(*reb, "examples_moved"),
        NumField(*reb, "examples_returned"), NumField(*reb, "migrations"));
  }
  const JsonValue* workers = doc.Find("workers");
  if (workers == nullptr || !workers->is_array()) return;
  std::printf("%7s %7s %6s %5s %9s %6s  %s\n", "worker", "clock",
              "stale", "live", "beat_age", "loans", "staleness");
  for (const JsonValue& w : workers->array) {
    const double stale = NumField(w, "staleness");
    const JsonValue* live = w.Find("live");
    const bool is_live = live == nullptr || live->bool_value;
    const double age = NumField(w, "last_beat_age_s");
    // One bar cell per staleness clock, capped at 20 — at a glance the
    // longest bar is the straggler the SSP gate is waiting on.
    std::string bar(static_cast<size_t>(
                        stale < 0 ? 0 : (stale > 20 ? 20 : stale)),
                    '#');
    if (!is_live) bar = "EVICTED";
    std::printf("%7.0f %7.0f %6.0f %5s %9.2f %6.0f  %s\n",
                NumField(w, "worker"), NumField(w, "clock"), stale,
                is_live ? "yes" : "no", age, NumField(w, "loans_out"),
                bar.c_str());
  }
}

/// `top`: a refreshing terminal dashboard over kStatus — clock
/// frontier, staleness bars, liveness, loan ledger, push overlap.
int RunTop(const FlagParser& flags) {
  GatewayClient client;
  Status conn = ConnectGateway(flags, &client);
  if (!conn.ok()) return Fail(conn);
  const int interval_ms =
      static_cast<int>(flags.GetInt("interval_ms", 500).value());
  const int iters = static_cast<int>(flags.GetInt("iters", 0).value());
  for (int i = 0; iters <= 0 || i < iters; ++i) {
    auto status_json =
        GatewayCall(&client, {static_cast<uint8_t>(PsOpCode::kStatus)});
    if (!status_json.ok()) {
      if (i > 0) {
        // The run we were watching finished and closed the gateway —
        // a normal way for `top` to end.
        std::printf("run ended: %s\n",
                    status_json.status().ToString().c_str());
        return 0;
      }
      return Fail(status_json.status());
    }
    auto parsed = ParseJson(status_json.value());
    if (!parsed.ok()) return Fail(parsed.status());
    if (i > 0 || iters != 1) {
      std::printf("\033[H\033[2J");  // cursor home + clear screen
    }
    RenderTopFrame(parsed.value(), i + 1);
    std::fflush(stdout);
    if (iters <= 0 || i + 1 < iters) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          interval_ms > 0 ? interval_ms : 500));
    }
  }
  return 0;
}

/// `check-obs`: parses and schema-validates previously written
/// metrics.json / trace.json files; non-zero exit on any failure. CI's
/// obs-smoke job runs this against a fresh train + simulate.
int RunCheckObs(const FlagParser& flags) {
  const std::string metrics_path = flags.GetString("metrics", "");
  const std::string trace_path = flags.GetString("trace", "");
  const std::string timeseries_path = flags.GetString("timeseries", "");
  const std::string flightrec_path = flags.GetString("flightrec", "");
  const std::string status_path = flags.GetString("status", "");
  if (metrics_path.empty() && trace_path.empty() &&
      timeseries_path.empty() && flightrec_path.empty() &&
      status_path.empty()) {
    return Fail(Status::InvalidArgument(
        "pass --metrics= / --trace= / --timeseries= / --flightrec= / "
        "--status="));
  }
  auto read_file = [](const std::string& path) -> Result<std::string> {
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  if (!metrics_path.empty()) {
    auto text = read_file(metrics_path);
    if (!text.ok()) return Fail(text.status());
    Status st = ValidateMetricsJson(text.value());
    if (!st.ok()) return Fail(st);
    std::printf("%s: valid hetps.metrics.v1\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    auto text = read_file(trace_path);
    if (!text.ok()) return Fail(text.status());
    Status st = ValidateChromeTraceJson(text.value());
    if (!st.ok()) return Fail(st);
    std::printf("%s: valid Chrome trace\n", trace_path.c_str());
  }
  if (!timeseries_path.empty()) {
    auto text = read_file(timeseries_path);
    if (!text.ok()) return Fail(text.status());
    Status st = ValidateTimeSeriesJson(text.value());
    if (!st.ok()) return Fail(st);
    std::printf("%s: valid hetps.timeseries.v1\n",
                timeseries_path.c_str());
  }
  if (!flightrec_path.empty()) {
    auto text = read_file(flightrec_path);
    if (!text.ok()) return Fail(text.status());
    Status st = ValidateFlightRecJson(text.value());
    if (!st.ok()) return Fail(st);
    std::printf("%s: valid hetps.flightrec.v1\n",
                flightrec_path.c_str());
  }
  if (!status_path.empty()) {
    auto text = read_file(status_path);
    if (!text.ok()) return Fail(text.status());
    Status st = ValidateStatusJson(text.value());
    if (!st.ok()) return Fail(st);
    std::printf("%s: valid hetps.status.v1\n", status_path.c_str());
  }
  return 0;
}

/// Splits a rendered series key "worker.wait_us{worker=3}" into its
/// base name and the value of its `worker` label (-1 when absent).
int WorkerLabelOf(const std::string& series, std::string* base) {
  const size_t brace = series.find('{');
  if (base != nullptr) *base = series.substr(0, brace);
  if (brace == std::string::npos) return -1;
  const size_t pos = series.find("worker=", brace);
  if (pos == std::string::npos) return -1;
  return std::atoi(series.c_str() + pos + 7);
}

double MeanOf(const std::vector<double>& v, size_t begin, size_t end) {
  if (begin >= end) return 0.0;
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += v[i];
  return sum / static_cast<double>(end - begin);
}

/// `inspect`: renders timeseries.json (+ optional metrics.json /
/// flightrec.json) into a human-readable heterogeneity report —
/// per-worker wait/compute over time, the straggler callout, the
/// push-pipeline comm-overlap summary, and the chronological flight
/// record.
int RunInspect(const FlagParser& flags) {
  const std::string timeseries_path = flags.GetString("timeseries", "");
  const std::string metrics_path = flags.GetString("metrics", "");
  const std::string flightrec_path = flags.GetString("flightrec", "");
  if (timeseries_path.empty() && metrics_path.empty() &&
      flightrec_path.empty()) {
    return Fail(Status::InvalidArgument(
        "pass at least one of --timeseries=timeseries.json "
        "[--metrics=...] [--flightrec=...]"));
  }
  auto read_file = [](const std::string& path) -> Result<std::string> {
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  if (!timeseries_path.empty()) {
    auto text = read_file(timeseries_path);
    if (!text.ok()) return Fail(text.status());
    Status valid = ValidateTimeSeriesJson(text.value());
    if (!valid.ok()) return Fail(valid);
    auto parsed = ParseJson(text.value());
    if (!parsed.ok()) return Fail(parsed.status());
    const JsonValue& doc = parsed.value();

    // Per-worker chronological per-window phase means (µs). A window
    // without a worker's series (no clock finished in it) is skipped for
    // that worker, so each vector is that worker's own timeline.
    std::map<int, std::vector<double>> wait_means;
    std::map<int, std::vector<double>> compute_means;
    const JsonValue* windows = doc.Find("windows");
    for (const JsonValue& window : windows->array) {
      const JsonValue* hists = window.Find("histograms");
      if (hists == nullptr || !hists->is_object()) continue;
      for (const auto& [series, h] : hists->object) {
        std::string base;
        const int worker = WorkerLabelOf(series, &base);
        if (worker < 0) continue;
        const double count = h.Find("count")->number_value;
        if (count <= 0) continue;
        const double mean = h.Find("sum")->number_value / count;
        if (base == "worker.wait_us") {
          wait_means[worker].push_back(mean);
        } else if (base == "worker.compute_us") {
          compute_means[worker].push_back(mean);
        }
      }
    }

    std::printf("heterogeneity report: %s\n", timeseries_path.c_str());
    std::printf("windows: %zu (dropped %.0f)\n", windows->array.size(),
                doc.Find("dropped_windows")->number_value);
    // The early/late comparison splits each worker's timeline in half; with
    // fewer than two windows the "early half" is empty and every mean
    // degenerates (0/0 NaN garbage). Report that cleanly instead.
    if (windows->array.size() < 2) {
      std::printf("insufficient windows: %zu (need >= 2 for the early/late "
                  "comparison; run longer or shrink the window size)\n",
                  windows->array.size());
    } else if (wait_means.empty() && compute_means.empty()) {
      std::printf("no worker.wait_us / worker.compute_us series found "
                  "(run with --timeseries_out on a training command)\n");
    } else {
      std::printf("%8s %8s %14s %14s %14s\n", "worker", "windows",
                  "wait:early us", "wait:late us", "compute us");
      for (const auto& [worker, waits] : wait_means) {
        const size_t half = waits.size() / 2;
        const std::vector<double>& computes = compute_means[worker];
        std::printf("%8d %8zu %14.0f %14.0f %14.0f\n", worker,
                    waits.size(), MeanOf(waits, 0, half ? half : 1),
                    MeanOf(waits, half, waits.size()),
                    MeanOf(computes, 0, computes.size()));
      }
      // Callouts: the slowest computer is the straggler; the worker whose
      // wait grows most is the one the admission gate parks behind it
      // (under SSP the *survivors* wait on a dead or slow peer).
      int slow_worker = -1;
      double slow_compute = -1.0;
      for (const auto& [worker, computes] : compute_means) {
        const double mean = MeanOf(computes, 0, computes.size());
        if (mean > slow_compute) {
          slow_compute = mean;
          slow_worker = worker;
        }
      }
      int blocked_worker = -1;
      double blocked_growth = -1.0;
      for (const auto& [worker, waits] : wait_means) {
        const size_t half = waits.size() / 2;
        if (half == 0) continue;
        const double growth = MeanOf(waits, half, waits.size()) -
                              MeanOf(waits, 0, half);
        if (growth > blocked_growth) {
          blocked_growth = growth;
          blocked_worker = worker;
        }
      }
      if (slow_worker >= 0) {
        std::printf("slowest compute: worker %d (mean %.0f us/clock)\n",
                    slow_worker, slow_compute);
      }
      if (blocked_worker >= 0 && blocked_growth > 0.0) {
        std::printf("most gate-blocked: worker %d (wait grew %.0f us "
                    "from early to late windows)\n",
                    blocked_worker, blocked_growth);
      }
    }
  }

  // Comm overlap: the pipelined push path reports how much push
  // transfer time it hid behind compute (worker.push_hidden_seconds
  // gauges, from WorkerTimeBreakdown). These are end-of-run gauges in
  // metrics.json, not windowed series, so they ride in via --metrics=.
  if (!metrics_path.empty()) {
    auto m_text = read_file(metrics_path);
    if (!m_text.ok()) return Fail(m_text.status());
    Status m_valid = ValidateMetricsJson(m_text.value());
    if (!m_valid.ok()) return Fail(m_valid);
    auto m_parsed = ParseJson(m_text.value());
    if (!m_parsed.ok()) return Fail(m_parsed.status());
    const JsonValue* gauges =
        m_parsed.value().Find("metrics")->Find("gauges");
    std::map<int, double> hidden;
    std::map<int, double> comm;
    if (gauges != nullptr && gauges->is_object()) {
      for (const auto& [series, v] : gauges->object) {
        std::string base;
        const int worker = WorkerLabelOf(series, &base);
        if (worker < 0) continue;
        if (base == "worker.push_hidden_seconds") {
          hidden[worker] = v.number_value;
        } else if (base == "worker.comm_seconds") {
          comm[worker] = v.number_value;
        }
      }
    }
    double total_hidden = 0.0;
    double total_comm = 0.0;
    for (const auto& [worker, h] : hidden) total_hidden += h;
    for (const auto& [worker, c] : comm) total_comm += c;
    if (hidden.empty()) {
      std::printf("\ncomm overlap: no worker.push_hidden_seconds gauges "
                  "in %s (train with --push_window >= 1)\n",
                  metrics_path.c_str());
    } else {
      // hidden / (hidden + comm) = fraction of transfer time the
      // pipeline took off the critical path for that worker.
      std::printf("\ncomm overlap (%s):\n", metrics_path.c_str());
      std::printf("%8s %14s %14s %10s\n", "worker", "hidden s",
                  "blocked s", "overlap");
      for (const auto& [worker, h] : hidden) {
        const double c = comm.count(worker) ? comm[worker] : 0.0;
        const double denom = h + c;
        std::printf("%8d %14.3f %14.3f %9.0f%%\n", worker, h, c,
                    denom > 0.0 ? 100.0 * h / denom : 0.0);
      }
      const double total = total_hidden + total_comm;
      std::printf("pushes hid %.3fs of transfer behind compute "
                  "(%.0f%% of %.3fs total comm+hidden)\n",
                  total_hidden,
                  total > 0.0 ? 100.0 * total_hidden / total : 0.0,
                  total);
    }
  }

  if (!flightrec_path.empty()) {
    auto fr_text = read_file(flightrec_path);
    if (!fr_text.ok()) return Fail(fr_text.status());
    Status fr_valid = ValidateFlightRecJson(fr_text.value());
    if (!fr_valid.ok()) return Fail(fr_valid);
    auto fr_parsed = ParseJson(fr_text.value());
    if (!fr_parsed.ok()) return Fail(fr_parsed.status());
    const JsonValue& fr = fr_parsed.value();
    const JsonValue* events = fr.Find("events");
    const JsonValue* reason = fr.Find("dump_reason");
    std::printf("\nflight record: %s (%zu events, last dump: %s)\n",
                flightrec_path.c_str(), events->array.size(),
                reason != nullptr && reason->is_string()
                    ? reason->string_value.c_str()
                    : "?");
    for (const JsonValue& ev : events->array) {
      const JsonValue* note = ev.Find("note");
      std::printf("  %12.3fms  %-18s",
                  ev.Find("ts_us")->number_value / 1000.0,
                  ev.Find("kind")->string_value.c_str());
      const double worker = ev.Find("worker")->number_value;
      const double clock = ev.Find("clock")->number_value;
      const double value = ev.Find("value")->number_value;
      if (worker >= 0) std::printf(" worker=%.0f", worker);
      if (clock >= 0) std::printf(" clock=%.0f", clock);
      if (value != 0.0) std::printf(" value=%g", value);
      if (note != nullptr && note->is_string()) {
        std::printf(" (%s)", note->string_value.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  Status st = flags.Parse(argc - 1, argv + 1);
  if (!st.ok()) return Fail(st);
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: hetps_train "
                 "<train|evaluate|predict|simulate|check-obs|inspect|"
                 "dump-status|top|obs-ctl> "
                 "[flags]\n(see the header of cli/hetps_train.cc)\n");
    return 1;
  }
  const std::string command = flags.positional()[0];
  int rc = 0;
  if (command == "train") {
    rc = RunTrain(flags);
  } else if (command == "evaluate") {
    rc = RunEvaluate(flags);
  } else if (command == "predict") {
    rc = RunPredict(flags);
  } else if (command == "simulate") {
    rc = RunSimulate(flags);
  } else if (command == "check-obs") {
    rc = RunCheckObs(flags);
  } else if (command == "inspect") {
    rc = RunInspect(flags);
  } else if (command == "dump-status") {
    rc = RunDumpStatus(flags);
  } else if (command == "top") {
    rc = RunTop(flags);
  } else if (command == "obs-ctl") {
    rc = RunObsCtl(flags);
  } else {
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 1;
  }
  for (const std::string& name : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", name.c_str());
  }
  return rc;
}

}  // namespace
}  // namespace hetps

int main(int argc, char** argv) {
  return hetps::Main(argc, argv);
}
