// hetps_train — command-line front end for the library.
//
//   hetps_train train    --data=train.libsvm --model=out.model
//                        [--loss=logistic|hinge|squared] [--rule=ssp|con|dyn]
//                        [--protocol=bsp|asp|ssp] [--staleness=3]
//                        [--workers=4] [--servers=2] [--clocks=20]
//                        [--partitions=2] [--scheme=range|hash|rangehash]
//                        [--update_filter=0] [--lr=0.3] [--decay] [--l2=1e-4]
//                        [--batch-fraction=0.1] [--synthetic=url|ctr]
//   hetps_train evaluate --data=test.libsvm --model=in.model
//   hetps_train predict  --data=test.libsvm --model=in.model [--out=preds.txt]
//   hetps_train simulate [--hl=2] [--workers=30] [--servers=10]
//                        [--rule=dyn] [--staleness=3] [--lr=2.0]
//                        [--clocks=60] [--tolerance=0.4]
//                        [--partitions=1] [--scheme=range|hash|rangehash]
//                        [--update_filter=0]
//                        [--kill_worker=-1] [--kill_at_clock=-1]
//                        [--heartbeat_timeout=0] [--evict_dead_workers=1]
//   hetps_train check-obs --metrics=metrics.json [--trace=trace.json]
//
// Observability (train and simulate): --metrics_out=metrics.json writes
// a metric snapshot (counters/gauges/histograms incl. staleness and
// compute-vs-wait breakdown), --trace_out=trace.json a Chrome trace
// loadable in chrome://tracing / Perfetto. --report_every=N re-writes
// metrics_out every N worker-0 clocks; --trace_buffer_kb bounds the
// per-thread trace ring. `check-obs` validates such files (CI smoke).
//
// `--synthetic=url|ctr` generates a dataset instead of reading --data,
// which makes the tool usable out of the box.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/consolidation.h"
#include "core/learning_rate.h"
#include "data/libsvm_io.h"
#include "data/synthetic.h"
#include "models/linear_model.h"
#include "obs/metrics.h"
#include "obs/run_reporter.h"
#include "obs/trace.h"
#include "sim/event_sim.h"
#include "util/flags.h"
#include "util/logging.h"

namespace hetps {
namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

Result<Dataset> LoadData(const FlagParser& flags) {
  const std::string synthetic = flags.GetString("synthetic", "");
  if (!synthetic.empty()) {
    const uint64_t seed = static_cast<uint64_t>(
        flags.GetInt("seed", 42).value());
    Dataset d = synthetic == "ctr"
                    ? GenerateSynthetic(CtrLikeConfig(1.0, seed))
                    : GenerateSynthetic(UrlLikeConfig(1.0, seed));
    Rng rng(seed + 1);
    d.Shuffle(&rng);
    return d;
  }
  const std::string path = flags.GetString("data", "");
  if (path.empty()) {
    return Status::InvalidArgument(
        "pass --data=<libsvm file> or --synthetic=url|ctr");
  }
  return ReadLibSvmFile(path);
}

/// Reads the observability flags, primes the global metric/trace state,
/// and hands back a RunReporter (null when no output was requested).
/// `run_info` annotates metrics.json's "run" object.
std::unique_ptr<RunReporter> MakeReporter(
    const FlagParser& flags,
    std::vector<std::pair<std::string, std::string>> run_info) {
  RunReporterOptions opts;
  opts.metrics_out = flags.GetString("metrics_out", "");
  opts.trace_out = flags.GetString("trace_out", "");
  opts.report_every =
      static_cast<int>(flags.GetInt("report_every", 0).value());
  const int trace_kb =
      static_cast<int>(flags.GetInt("trace_buffer_kb", 256).value());
  if (opts.metrics_out.empty() && opts.trace_out.empty()) {
    return nullptr;
  }
  // One run per process invocation: start from clean global state so the
  // files describe this run only.
  GlobalMetrics().ResetValues();
  // Pre-register the RPC-layer fault/retry counters so metrics.json
  // always carries them (zero for runs that never touch the bus) —
  // dashboards can key on them unconditionally.
  GlobalMetrics().counter("bus.delivered");
  GlobalMetrics().counter("bus.fault.dropped_requests");
  GlobalMetrics().counter("bus.fault.dropped_responses");
  GlobalMetrics().counter("bus.fault.duplicated_requests");
  GlobalMetrics().counter("bus.fault.delayed_requests");
  GlobalMetrics().counter("rpc.client_retries");
  if (!opts.trace_out.empty()) {
    TraceRecorder::Global().Clear();
    TraceOptions trace_opts;
    trace_opts.buffer_kb_per_thread =
        trace_kb > 0 ? static_cast<size_t>(trace_kb) : 256;
    TraceRecorder::Global().Start(trace_opts);
  }
  opts.run_info = std::move(run_info);
  return std::make_unique<RunReporter>(std::move(opts));
}

int FinishReport(RunReporter* reporter) {
  if (reporter == nullptr) return 0;
  const Status st = reporter->WriteFinal();
  TraceRecorder::Global().Stop();
  if (!st.ok()) return Fail(st);
  if (!reporter->options().metrics_out.empty()) {
    std::printf("metrics written to %s\n",
                reporter->options().metrics_out.c_str());
  }
  if (!reporter->options().trace_out.empty()) {
    std::printf("trace written to %s\n",
                reporter->options().trace_out.c_str());
  }
  return 0;
}

PartitionScheme ParseScheme(const FlagParser& flags, Status* st) {
  const std::string scheme = flags.GetString("scheme", "rangehash");
  if (scheme == "range") return PartitionScheme::kRange;
  if (scheme == "hash") return PartitionScheme::kHash;
  if (scheme == "rangehash") return PartitionScheme::kRangeHash;
  *st = Status::InvalidArgument("unknown --scheme: " + scheme);
  return PartitionScheme::kRangeHash;
}

SyncPolicy ParseSync(const FlagParser& flags, Status* st) {
  const std::string protocol = flags.GetString("protocol", "ssp");
  const int s =
      static_cast<int>(flags.GetInt("staleness", 3).value());
  if (protocol == "bsp") return SyncPolicy::Bsp();
  if (protocol == "asp") return SyncPolicy::Asp();
  if (protocol == "ssp") return SyncPolicy::Ssp(s);
  *st = Status::InvalidArgument("unknown --protocol: " + protocol);
  return SyncPolicy::Ssp(s);
}

int RunTrain(const FlagParser& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());

  LinearModelConfig cfg;
  cfg.loss = flags.GetString("loss", "logistic");
  cfg.rule = flags.GetString("rule", "dyn");
  Status sync_st;
  cfg.sync = ParseSync(flags, &sync_st);
  if (!sync_st.ok()) return Fail(sync_st);
  cfg.num_workers =
      static_cast<int>(flags.GetInt("workers", 4).value());
  cfg.num_servers =
      static_cast<int>(flags.GetInt("servers", 2).value());
  cfg.partitions_per_server =
      static_cast<int>(flags.GetInt("partitions", 2).value());
  Status scheme_st;
  cfg.scheme = ParseScheme(flags, &scheme_st);
  if (!scheme_st.ok()) return Fail(scheme_st);
  cfg.max_clocks = static_cast<int>(flags.GetInt("clocks", 20).value());
  cfg.learning_rate = flags.GetDouble("lr", 0.3).value();
  cfg.decayed_rate = flags.GetBool("decay", false);
  cfg.l2 = flags.GetDouble("l2", 1e-4).value();
  cfg.batch_fraction =
      flags.GetDouble("batch-fraction", 0.1).value();
  cfg.update_filter_epsilon =
      flags.GetDouble("update_filter", 0.0).value();
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 42).value());

  std::unique_ptr<RunReporter> reporter = MakeReporter(
      flags, {{"command", "train"},
              {"loss", cfg.loss},
              {"rule", cfg.rule},
              {"protocol", flags.GetString("protocol", "ssp")},
              {"workers", std::to_string(cfg.num_workers)},
              {"servers", std::to_string(cfg.num_servers)},
              {"clocks", std::to_string(cfg.max_clocks)}});
  if (reporter != nullptr) {
    RunReporter* rep = reporter.get();
    cfg.on_epoch = [rep](int epoch) { rep->OnEpoch(epoch); };
  }

  auto model = LinearModel::Train(data.value(), cfg);
  if (!model.ok()) return Fail(model.status());
  std::printf("trained %s/%s in %.2fs wall: objective %.4f, accuracy "
              "%.3f\n",
              cfg.loss.c_str(), cfg.rule.c_str(),
              model.value().train_stats().wall_seconds,
              model.value().Objective(data.value()),
              model.value().Accuracy(data.value()));
  const std::string out = flags.GetString("model", "");
  if (!out.empty()) {
    Status st = model.value().Save(out);
    if (!st.ok()) return Fail(st);
    std::printf("model written to %s\n", out.c_str());
  }
  return FinishReport(reporter.get());
}

Result<LinearModel> LoadModel(const FlagParser& flags) {
  const std::string path = flags.GetString("model", "");
  if (path.empty()) {
    return Status::InvalidArgument("pass --model=<file>");
  }
  return LinearModel::Load(path);
}

int RunEvaluate(const FlagParser& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());
  auto model = LoadModel(flags);
  if (!model.ok()) return Fail(model.status());
  std::printf("objective %.4f, accuracy %.3f over %zu examples\n",
              model.value().Objective(data.value()),
              model.value().Accuracy(data.value()),
              data.value().size());
  return 0;
}

int RunPredict(const FlagParser& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());
  auto model = LoadModel(flags);
  if (!model.ok()) return Fail(model.status());
  const std::string out_path = flags.GetString("out", "");
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      return Fail(Status::IOError("cannot open " + out_path));
    }
  }
  std::ostream& os = out_path.empty() ? std::cout : file;
  for (size_t i = 0; i < data.value().size(); ++i) {
    os << model.value().Predict(data.value().example(i).features)
       << '\n';
  }
  return 0;
}

int RunSimulate(const FlagParser& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());
  const double hl = flags.GetDouble("hl", 2.0).value();
  const int workers =
      static_cast<int>(flags.GetInt("workers", 30).value());
  const int servers =
      static_cast<int>(flags.GetInt("servers", 10).value());
  auto rule =
      MakeConsolidationRule(flags.GetString("rule", "dyn"));
  auto loss = MakeLoss(flags.GetString("loss", "logistic"));
  FixedRate sched(flags.GetDouble("lr", 2.0).value());
  SimOptions options;
  Status sync_st;
  options.sync = ParseSync(flags, &sync_st);
  if (!sync_st.ok()) return Fail(sync_st);
  options.max_clocks =
      static_cast<int>(flags.GetInt("clocks", 60).value());
  options.partitions_per_server =
      static_cast<int>(flags.GetInt("partitions", 1).value());
  Status scheme_st;
  options.scheme = ParseScheme(flags, &scheme_st);
  if (!scheme_st.ok()) return Fail(scheme_st);
  options.update_filter_epsilon =
      flags.GetDouble("update_filter", 0.0).value();
  options.objective_tolerance =
      flags.GetDouble("tolerance", 0.4).value();
  options.l2 = flags.GetDouble("l2", 1e-4).value();
  // Liveness / failure injection (see DESIGN.md "Failure model & worker
  // eviction"): --kill_worker/--kill_at_clock crash-stop one worker,
  // --heartbeat_timeout arms eviction, --evict_dead_workers=0 shows the
  // stall instead.
  options.kill_worker =
      static_cast<int>(flags.GetInt("kill_worker", -1).value());
  if (options.kill_worker >= workers) {
    return Fail(Status::InvalidArgument(
        "--kill_worker=" + std::to_string(options.kill_worker) +
        " is out of range for --workers=" + std::to_string(workers)));
  }
  options.kill_at_clock =
      static_cast<int>(flags.GetInt("kill_at_clock", -1).value());
  options.heartbeat_timeout_seconds =
      flags.GetDouble("heartbeat_timeout", 0.0).value();
  options.evict_dead_workers = flags.GetBool("evict_dead_workers", true);
  if (options.kill_worker >= 0 &&
      options.heartbeat_timeout_seconds <= 0.0) {
    // A kill without the liveness plane stalls until max_sim_seconds;
    // bound the demonstration.
    options.max_sim_seconds =
        flags.GetDouble("max_sim_seconds", 600.0).value();
  }
  const ClusterConfig cluster =
      ClusterConfig::WithStragglers(workers, servers, hl, 0.2);
  std::unique_ptr<RunReporter> reporter = MakeReporter(
      flags, {{"command", "simulate"},
              {"rule", flags.GetString("rule", "dyn")},
              {"protocol", flags.GetString("protocol", "ssp")},
              {"workers", std::to_string(workers)},
              {"servers", std::to_string(servers)},
              {"hl", std::to_string(hl)}});
  if (reporter != nullptr) {
    RunReporter* rep = reporter.get();
    options.on_epoch = [rep](int epoch) { rep->OnEpoch(epoch); };
  }
  const SimResult r = RunSimulation(data.value(), cluster, *rule, sched,
                                    *loss, options);
  std::printf("%s\n", r.Summary().c_str());
  if (options.kill_worker >= 0 || r.workers_evicted > 0) {
    std::printf(
        "liveness: evicted=%d failed_over_examples=%lld "
        "blocked_at_end=%d\n",
        r.workers_evicted,
        static_cast<long long>(r.examples_failed_over),
        r.workers_blocked_at_end);
  }
  return FinishReport(reporter.get());
}

/// `check-obs`: parses and schema-validates previously written
/// metrics.json / trace.json files; non-zero exit on any failure. CI's
/// obs-smoke job runs this against a fresh train + simulate.
int RunCheckObs(const FlagParser& flags) {
  const std::string metrics_path = flags.GetString("metrics", "");
  const std::string trace_path = flags.GetString("trace", "");
  if (metrics_path.empty() && trace_path.empty()) {
    return Fail(Status::InvalidArgument(
        "pass --metrics=metrics.json and/or --trace=trace.json"));
  }
  auto read_file = [](const std::string& path) -> Result<std::string> {
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  if (!metrics_path.empty()) {
    auto text = read_file(metrics_path);
    if (!text.ok()) return Fail(text.status());
    Status st = ValidateMetricsJson(text.value());
    if (!st.ok()) return Fail(st);
    std::printf("%s: valid hetps.metrics.v1\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    auto text = read_file(trace_path);
    if (!text.ok()) return Fail(text.status());
    Status st = ValidateChromeTraceJson(text.value());
    if (!st.ok()) return Fail(st);
    std::printf("%s: valid Chrome trace\n", trace_path.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  Status st = flags.Parse(argc - 1, argv + 1);
  if (!st.ok()) return Fail(st);
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: hetps_train "
                 "<train|evaluate|predict|simulate|check-obs> "
                 "[flags]\n(see the header of cli/hetps_train.cc)\n");
    return 1;
  }
  const std::string command = flags.positional()[0];
  int rc = 0;
  if (command == "train") {
    rc = RunTrain(flags);
  } else if (command == "evaluate") {
    rc = RunEvaluate(flags);
  } else if (command == "predict") {
    rc = RunPredict(flags);
  } else if (command == "simulate") {
    rc = RunSimulate(flags);
  } else if (command == "check-obs") {
    rc = RunCheckObs(flags);
  } else {
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 1;
  }
  for (const std::string& name : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", name.c_str());
  }
  return rc;
}

}  // namespace
}  // namespace hetps

int main(int argc, char** argv) {
  return hetps::Main(argc, argv);
}
