#include "ps/load_balancer.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetps {
namespace {

/// Feeds one timing report through the master (so the straggler
/// statistics see it first, as the service does) and then the balancer.
std::vector<ShardMove> Report(LoadBalancer* lb, Master* master, int worker,
                              int clock, double seconds,
                              const std::vector<size_t>& sizes) {
  master->ReportClockTime(worker, seconds);
  return lb->OnClockReport(worker, clock, seconds, master, sizes);
}

TEST(EstimateClockSecondsTest, ScalesWithPendingInflow) {
  EXPECT_DOUBLE_EQ(EstimateClockSeconds(2.0, 100, 0), 2.0);
  EXPECT_DOUBLE_EQ(EstimateClockSeconds(2.0, 100, 50), 3.0);
  // Unknown speed stays unknown regardless of inflow.
  EXPECT_DOUBLE_EQ(EstimateClockSeconds(0.0, 100, 50), 0.0);
  // Empty shard must not divide by zero.
  EXPECT_DOUBLE_EQ(EstimateClockSeconds(1.0, 0, 2), 3.0);
}

TEST(LoadBalancerTest, HysteresisDelaysTheFirstMigration) {
  Master master(1, 4);
  LoadBalancerOptions opts;
  opts.hysteresis = 3;
  LoadBalancer lb(4, opts);
  const std::vector<size_t> sizes = {100, 100, 100, 100};
  for (int m = 0; m < 3; ++m) {
    EXPECT_TRUE(Report(&lb, &master, m, 0, 1.0, sizes).empty());
  }
  // Two flagged reports: jitter, not persistence — no move yet.
  EXPECT_TRUE(Report(&lb, &master, 3, 0, 3.0, sizes).empty());
  EXPECT_TRUE(Report(&lb, &master, 3, 1, 3.0, sizes).empty());
  EXPECT_EQ(lb.straggler_flags(), 2);
  EXPECT_EQ(lb.migrations(), 0);
  // Third consecutive flag opens the gate: 5% of 100 moves to the
  // least-loaded fast worker.
  const auto moves = Report(&lb, &master, 3, 2, 3.0, sizes);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, 3);
  EXPECT_EQ(moves[0].count, 5u);
  EXPECT_FALSE(moves[0].returned);
  EXPECT_EQ(lb.examples_moved(), 5);
  EXPECT_EQ(lb.migrations(), 1);
  EXPECT_EQ(lb.OutstandingLoans(3), 5u);
}

TEST(LoadBalancerTest, CleanReportResetsTheFlagStreak) {
  Master master(1, 2);
  LoadBalancerOptions opts;
  opts.hysteresis = 2;
  LoadBalancer lb(2, opts);
  const std::vector<size_t> sizes = {100, 100};
  EXPECT_TRUE(Report(&lb, &master, 0, 0, 1.0, sizes).empty());
  EXPECT_TRUE(Report(&lb, &master, 1, 0, 3.0, sizes).empty());
  // A clean clock in between restarts the count from zero.
  EXPECT_TRUE(Report(&lb, &master, 1, 1, 1.0, sizes).empty());
  EXPECT_TRUE(Report(&lb, &master, 1, 2, 3.0, sizes).empty());
  EXPECT_EQ(lb.migrations(), 0);
  EXPECT_FALSE(Report(&lb, &master, 1, 3, 3.0, sizes).empty());
}

TEST(LoadBalancerTest, PicksTheLeastLoadedLiveTarget) {
  Master master(1, 4);
  LoadBalancerOptions opts;
  opts.hysteresis = 1;
  LoadBalancer lb(4, opts);
  const std::vector<size_t> sizes = {100, 100, 100, 100};
  Report(&lb, &master, 0, 0, 2.0, sizes);
  Report(&lb, &master, 1, 0, 1.0, sizes);
  Report(&lb, &master, 2, 0, 1.5, sizes);
  const auto moves = Report(&lb, &master, 3, 0, 3.0, sizes);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].to, 1);
}

TEST(LoadBalancerTest, MinShardFloorStopsShedding) {
  Master master(1, 2);
  LoadBalancerOptions opts;
  opts.hysteresis = 1;
  opts.min_shard_size = 8;
  LoadBalancer lb(2, opts);
  Report(&lb, &master, 0, 0, 1.0, {100, 8});
  EXPECT_TRUE(Report(&lb, &master, 1, 0, 5.0, {100, 8}).empty());
  EXPECT_EQ(lb.examples_moved(), 0);
}

TEST(LoadBalancerTest, PerRoundCapBoundsEachDecision) {
  Master master(1, 2);
  LoadBalancerOptions opts;
  opts.hysteresis = 1;
  opts.reassign_fraction = 0.5;
  opts.max_examples_per_round = 3;
  LoadBalancer lb(2, opts);
  Report(&lb, &master, 0, 0, 1.0, {100, 100});
  const auto moves = Report(&lb, &master, 1, 0, 5.0, {100, 100});
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].count, 3u);
}

TEST(LoadBalancerTest, EqualizedLoadStopsFurtherMoves) {
  Master master(1, 2);
  LoadBalancerOptions opts;
  opts.hysteresis = 1;
  opts.reassign_fraction = 0.3;
  LoadBalancer lb(2, opts);
  Report(&lb, &master, 0, 0, 1.0, {100, 100});
  // First flagged report sheds 30 examples to worker 0.
  ASSERT_EQ(Report(&lb, &master, 1, 0, 3.0, {100, 100}).size(), 1u);
  // Worker 1 is still nominally flagged (1.4 > 1.2 * 1.0), but worker
  // 0's estimated clock now carries the 30 in-flight examples
  // (1.0 * 130/100 = 1.3), so the straggler rule re-checked against the
  // chosen target says the pair is equalized: no further move.
  EXPECT_TRUE(Report(&lb, &master, 1, 1, 1.4, {130, 70}).empty());
  EXPECT_EQ(lb.examples_moved(), 30);
}

TEST(LoadBalancerTest, RecoveredStragglerReclaimsItsLoans) {
  Master master(1, 3);
  LoadBalancerOptions opts;
  opts.hysteresis = 1;
  opts.recovery_windows = 2;
  opts.reassign_fraction = 0.1;
  LoadBalancer lb(3, opts);
  Report(&lb, &master, 0, 0, 1.0, {100, 100, 100});
  Report(&lb, &master, 1, 0, 1.0, {100, 100, 100});
  const auto out = Report(&lb, &master, 2, 0, 3.0, {100, 100, 100});
  ASSERT_EQ(out.size(), 1u);
  const int borrower = out[0].to;
  EXPECT_EQ(lb.OutstandingLoans(2), 10u);
  // The congestion ends: worker 2 reports true fast clocks. One clean
  // report is not enough...
  std::vector<size_t> sizes = {100, 100, 90};
  sizes[static_cast<size_t>(borrower)] += 10;
  EXPECT_TRUE(Report(&lb, &master, 2, 1, 1.0, sizes).empty());
  // ...the second reclaims the loan from the borrower.
  const auto back = Report(&lb, &master, 2, 2, 1.0, sizes);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].from, borrower);
  EXPECT_EQ(back[0].to, 2);
  EXPECT_EQ(back[0].count, 10u);
  EXPECT_TRUE(back[0].returned);
  EXPECT_EQ(lb.examples_returned(), 10);
  EXPECT_EQ(lb.OutstandingLoans(2), 0u);
}

TEST(LoadBalancerTest, PermanentStragglerNeverReclaims) {
  // A permanent straggler eventually reads as "clean" only because its
  // shard shrank. Reclaiming would re-flag it next clock (shed/reclaim
  // thrash), so the projected-time gate must hold the loans out.
  Master master(1, 2);
  LoadBalancerOptions opts;
  opts.hysteresis = 1;
  opts.recovery_windows = 1;
  opts.reassign_fraction = 0.4;
  LoadBalancer lb(2, opts);
  Report(&lb, &master, 0, 0, 1.0, {100, 100});
  ASSERT_EQ(Report(&lb, &master, 1, 0, 3.0, {100, 100}).size(), 1u);
  EXPECT_EQ(lb.OutstandingLoans(1), 40u);
  // With 60 examples the 2x-slow worker clocks 1.15s — under the 1.2
  // threshold, so it is clean. But projected back onto the full shard
  // (1.15 * 100/60 = 1.92) it would instantly re-straggle: no reclaim.
  EXPECT_TRUE(Report(&lb, &master, 1, 1, 1.15, {140, 60}).empty());
  EXPECT_TRUE(Report(&lb, &master, 1, 2, 1.15, {140, 60}).empty());
  EXPECT_EQ(lb.examples_returned(), 0);
  EXPECT_EQ(lb.OutstandingLoans(1), 40u);
}

TEST(LoadBalancerTest, DeadWorkersNeitherReportNorBorrow) {
  Master master(1, 3);
  LoadBalancerOptions opts;
  opts.hysteresis = 1;
  LoadBalancer lb(3, opts);
  const std::vector<size_t> sizes = {100, 100, 100};
  Report(&lb, &master, 0, 0, 1.0, sizes);
  master.MarkWorkerDead(2);
  // A zombie's report decides nothing and leaves no flag behind.
  EXPECT_TRUE(lb.OnClockReport(2, 0, 9.0, &master, sizes).empty());
  EXPECT_EQ(lb.straggler_flags(), 0);
  // And a live straggler never sheds toward the dead worker.
  const auto moves = Report(&lb, &master, 1, 0, 3.0, sizes);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].to, 0);
}

TEST(LoadBalancerTest, EvictionWritesOffLoansBothWays) {
  Master master(1, 3);
  LoadBalancerOptions opts;
  opts.hysteresis = 1;
  opts.recovery_windows = 1;
  opts.reassign_fraction = 0.1;
  LoadBalancer lb(3, opts);
  Report(&lb, &master, 0, 0, 1.0, {100, 100, 100});
  Report(&lb, &master, 1, 0, 1.0, {100, 100, 100});
  const auto out = Report(&lb, &master, 2, 0, 3.0, {100, 100, 100});
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(lb.OutstandingLoans(2), 10u);
  // The straggler itself is evicted: its ledger entries die with it.
  lb.OnWorkerEvicted(2);
  EXPECT_EQ(lb.OutstandingLoans(2), 0u);
  // A recovered worker whose *borrower* died reclaims nothing either —
  // the borrower's shard (loan included) went through eviction failover.
  Report(&lb, &master, 0, 1, 1.0, {110, 100, 100});
  const auto out2 = Report(&lb, &master, 1, 1, 3.0, {110, 100, 100});
  ASSERT_EQ(out2.size(), 1u);
  const int borrower = out2[0].to;
  master.MarkWorkerDead(borrower);
  const auto back = Report(&lb, &master, 1, 2, 1.0, {110, 100, 90});
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(lb.OutstandingLoans(1), 0u);
  EXPECT_EQ(lb.examples_returned(), 0);
}

TEST(LoadBalancerDeathTest, ValidatesOptions) {
  LoadBalancerOptions bad_threshold;
  bad_threshold.straggler_threshold = 1.0;
  EXPECT_DEATH(LoadBalancer(2, bad_threshold), "threshold");
  LoadBalancerOptions bad_fraction;
  bad_fraction.reassign_fraction = 0.0;
  EXPECT_DEATH(LoadBalancer(2, bad_fraction), "fraction");
  LoadBalancerOptions ok;
  EXPECT_DEATH(LoadBalancer(0, ok), "worker");
}

}  // namespace
}  // namespace hetps
