#include "ps/worker_client.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace hetps {
namespace {

PsOptions Options(SyncPolicy sync) {
  PsOptions opts;
  opts.num_servers = 2;
  opts.sync = sync;
  return opts;
}

TEST(WorkerClientTest, PushCountsAndReachesServer) {
  SspRule rule;
  ParameterServer ps(4, 1, rule, Options(SyncPolicy::Asp()));
  WorkerClient client(0, &ps);
  client.Push(0, SparseVector({2}, {5.0}));
  EXPECT_EQ(client.push_count(), 1);
  EXPECT_DOUBLE_EQ(ps.Snapshot()[2], 5.0);
}

TEST(WorkerClientTest, MaybePullRespectsSspThrottle) {
  SspRule rule;
  ParameterServer ps(4, 1, rule, Options(SyncPolicy::Ssp(2)));
  WorkerClient client(0, &ps);
  std::vector<double> replica(4, 0.0);
  // Single worker: cmin advances with every push.
  client.Push(0, SparseVector());
  EXPECT_FALSE(client.MaybePull(0, &replica));  // cp=0 !< 0-2
  client.Push(1, SparseVector());
  client.Push(2, SparseVector());
  EXPECT_TRUE(client.MaybePull(3, &replica));  // cp=0 < 3-2
  EXPECT_EQ(client.pull_count(), 1);
  EXPECT_EQ(client.cached_cmin(), 3);
}

TEST(WorkerClientTest, AspPullsEveryClockWithoutBlocking) {
  SspRule rule;
  ParameterServer ps(4, 2, rule, Options(SyncPolicy::Asp()));
  WorkerClient client(0, &ps);
  std::vector<double> replica(4, 0.0);
  for (int c = 0; c < 3; ++c) {
    client.Push(c, SparseVector());
    EXPECT_TRUE(client.MaybePull(c, &replica));
  }
  EXPECT_EQ(client.pull_count(), 3);
}

TEST(WorkerClientTest, PullRefreshesReplica) {
  SspRule rule;
  ParameterServer ps(4, 1, rule, Options(SyncPolicy::Asp()));
  WorkerClient client(0, &ps);
  std::vector<double> replica(4, 0.0);
  client.Push(0, SparseVector({1}, {3.0}));
  client.PullBlocking(1, &replica);
  EXPECT_DOUBLE_EQ(replica[1], 3.0);
}

TEST(WorkerClientTest, BspBarrierBlocksUntilPeersPush) {
  SspRule rule;
  ParameterServer ps(4, 2, rule, Options(SyncPolicy::Bsp()));
  WorkerClient fast(0, &ps);
  std::vector<double> replica(4, 0.0);
  fast.Push(0, SparseVector({0}, {1.0}));
  std::thread t([&] { fast.PullBlocking(1, &replica); });
  // The slow peer's push releases the barrier.
  WorkerClient slow(1, &ps);
  slow.Push(0, SparseVector({1}, {2.0}));
  t.join();
  EXPECT_DOUBLE_EQ(replica[0], 1.0);
  EXPECT_DOUBLE_EQ(replica[1], 2.0);
}

TEST(WorkerClientTest, PrefetchDeliversPulledState) {
  SspRule rule;
  ParameterServer ps(4, 1, rule, Options(SyncPolicy::Asp()));
  WorkerClient client(0, &ps);
  client.Push(0, SparseVector({1}, {3.0}));
  EXPECT_FALSE(client.prefetch_active());
  client.StartPrefetch(1);
  EXPECT_TRUE(client.prefetch_active());
  std::vector<double> replica(4, 0.0);
  EXPECT_TRUE(client.FinishPrefetch(&replica));
  EXPECT_FALSE(client.prefetch_active());
  EXPECT_DOUBLE_EQ(replica[1], 3.0);
  EXPECT_EQ(client.pull_count(), 1);
}

TEST(WorkerClientTest, FinishWithoutStartIsNoOp) {
  SspRule rule;
  ParameterServer ps(4, 1, rule, Options(SyncPolicy::Asp()));
  WorkerClient client(0, &ps);
  std::vector<double> replica(4, 7.0);
  EXPECT_FALSE(client.FinishPrefetch(&replica));
  EXPECT_DOUBLE_EQ(replica[0], 7.0);  // untouched
}

TEST(WorkerClientTest, PrefetchWaitsForSspAdmission) {
  SspRule rule;
  ParameterServer ps(4, 2, rule, Options(SyncPolicy::Bsp()));
  WorkerClient fast(0, &ps);
  fast.Push(0, SparseVector({0}, {1.0}));
  fast.StartPrefetch(1);  // blocked until the peer pushes clock 0
  WorkerClient slow(1, &ps);
  slow.Push(0, SparseVector({1}, {2.0}));
  std::vector<double> replica(4, 0.0);
  ASSERT_TRUE(fast.FinishPrefetch(&replica));
  EXPECT_DOUBLE_EQ(replica[0], 1.0);
  EXPECT_DOUBLE_EQ(replica[1], 2.0);
}

TEST(WorkerClientDeathTest, DoublePrefetchDies) {
  SspRule rule;
  ParameterServer ps(4, 1, rule, Options(SyncPolicy::Asp()));
  WorkerClient client(0, &ps);
  client.StartPrefetch(0);
  EXPECT_DEATH(client.StartPrefetch(0), "already in flight");
}

TEST(WorkerClientTest, DestructorCancelsBlockedPrefetch) {
  // The prefetch task is parked in the SSP admission wait (the peer
  // never pushes). Destroying the client must cancel the wait and join
  // the task instead of hanging — the teardown path that used to leave
  // a detached future blocked on a condition variable the PS was about
  // to destroy.
  SspRule rule;
  ParameterServer ps(4, 2, rule, Options(SyncPolicy::Ssp(0)));
  {
    WorkerClient fast(0, &ps);
    fast.Push(0, SparseVector({0}, {1.0}));
    fast.StartPrefetch(1);  // blocks: worker 1 never finishes clock 0
    // Give the task a moment to actually enter the wait.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }  // ~WorkerClient must return
  SUCCEED();
}

TEST(WorkerClientTest, PushOfEarlierClockOverlapsPrefetch) {
  // The intended pipeline: StartPrefetch(c + 1) ... Push(c). The push
  // here is what unblocks the prefetch's admission wait.
  SspRule rule;
  ParameterServer ps(4, 1, rule, Options(SyncPolicy::Ssp(0)));
  WorkerClient client(0, &ps);
  client.StartPrefetch(1);  // waits for clock 0 to be pushed
  client.Push(0, SparseVector({2}, {4.0}));
  std::vector<double> replica(4, 0.0);
  ASSERT_TRUE(client.FinishPrefetch(&replica));
  EXPECT_DOUBLE_EQ(replica[2], 4.0);
}

TEST(WorkerClientDeathTest, PushRacingPrefetchedClockDies) {
  SspRule rule;
  ParameterServer ps(4, 1, rule, Options(SyncPolicy::Asp()));
  WorkerClient client(0, &ps);
  client.StartPrefetch(1);
  // Pushing the prefetched clock itself while the pull is in flight is a
  // loop-sequencing bug, not a legal overlap.
  EXPECT_DEATH(client.Push(1, SparseVector({0}, {1.0})),
               "racing in-flight prefetch");
}

TEST(WorkerClientDeathTest, PullBlockingDuringPrefetchDies) {
  SspRule rule;
  ParameterServer ps(4, 1, rule, Options(SyncPolicy::Asp()));
  WorkerClient client(0, &ps);
  client.StartPrefetch(1);
  std::vector<double> replica;
  EXPECT_DEATH(client.PullBlocking(1, &replica),
               "racing in-flight prefetch");
}

TEST(WorkerClientDeathTest, ValidatesConstruction) {
  SspRule rule;
  ParameterServer ps(4, 1, rule, Options(SyncPolicy::Asp()));
  EXPECT_DEATH(WorkerClient(1, &ps), "out of range");
  EXPECT_DEATH(WorkerClient(0, nullptr), "null");
}

}  // namespace
}  // namespace hetps
