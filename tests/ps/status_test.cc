// The kStatus snapshot: assembly from a live ParameterServer
// (BuildStatusSnapshot), the hetps.status.v1 JSON rendering, and the
// validator — including the cmin <= live clock <= cmax invariant the
// TSan scrape hammer leans on.

#include "ps/status.h"

#include <gtest/gtest.h>

#include <string>

#include "core/dyn_sgd.h"
#include "obs/json.h"
#include "ps/parameter_server.h"

namespace hetps {
namespace {

PsOptions SmallOptions() {
  PsOptions opts;
  opts.num_servers = 2;
  opts.partitions_per_server = 2;
  opts.sync = SyncPolicy::Ssp(2);
  return opts;
}

TEST(StatusTest, SnapshotReflectsClockTableAndShards) {
  SspRule rule;
  ParameterServer ps(16, 3, rule, SmallOptions());
  ps.Push(0, 0, SparseVector({1}, {1.0}));
  ps.Push(0, 1, SparseVector({2}, {1.0}));
  ps.Push(1, 0, SparseVector({3}, {1.0}));
  ps.Push(2, 0, SparseVector({4}, {1.0}));

  StatusSnapshot snap;
  ps.BuildStatusSnapshot(&snap);
  EXPECT_EQ(snap.cmin, 1);
  EXPECT_EQ(snap.cmax, 2);
  EXPECT_EQ(snap.num_workers, 3);
  EXPECT_EQ(snap.num_live_workers, 3);
  EXPECT_EQ(snap.total_pushes, 4);
  ASSERT_EQ(snap.workers.size(), 3u);
  EXPECT_EQ(snap.workers[0].clock, 2);
  EXPECT_EQ(snap.workers[0].staleness, 1);
  EXPECT_EQ(snap.workers[1].clock, 1);
  EXPECT_EQ(snap.workers[1].staleness, 0);
  // 2 servers x 2 partitions, keys partitioned over dim 16.
  ASSERT_EQ(snap.shards.size(), 4u);
  int64_t keys = 0;
  for (const ShardStatus& s : snap.shards) keys += s.keys;
  EXPECT_EQ(keys, 16);
}

TEST(StatusTest, EvictionDropsWorkerFromLiveSetNotFromListing) {
  SspRule rule;
  ParameterServer ps(8, 3, rule, SmallOptions());
  ps.Push(0, 0, SparseVector());
  ps.Push(1, 0, SparseVector());
  ps.Push(2, 0, SparseVector());
  ASSERT_TRUE(ps.EvictWorker(2));

  StatusSnapshot snap;
  ps.BuildStatusSnapshot(&snap);
  EXPECT_EQ(snap.num_workers, 3);
  EXPECT_EQ(snap.num_live_workers, 2);
  ASSERT_EQ(snap.workers.size(), 3u);
  EXPECT_FALSE(snap.workers[2].live);
  // An evicted worker's frozen clock may trail cmin; the validator must
  // only bind *live* clocks to the [cmin, cmax] window.
  const Status st = ValidateStatusJson(snap.ToJson());
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(StatusTest, JsonRoundTripsThroughValidatorAndParser) {
  SspRule rule;
  ParameterServer ps(8, 2, rule, SmallOptions());
  ps.Push(0, 0, SparseVector({1}, {2.0}));
  ps.Push(1, 0, SparseVector());

  StatusSnapshot snap;
  ps.BuildStatusSnapshot(&snap);
  snap.source = "service";
  snap.ts_us = 123456;
  snap.push_inflight = 3;
  snap.push_window = 4;
  snap.workers[0].loans_out = 5;
  snap.examples_moved = 100;
  const std::string json = snap.ToJson();
  const Status st = ValidateStatusJson(json);
  EXPECT_TRUE(st.ok()) << st.ToString() << "\n" << json;

  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  const JsonValue& doc = parsed.value();
  EXPECT_EQ(doc.Find("schema")->string_value, "hetps.status.v1");
  EXPECT_EQ(doc.Find("source")->string_value, "service");
  EXPECT_DOUBLE_EQ(doc.Find("push")->Find("inflight")->number_value, 3.0);
  EXPECT_DOUBLE_EQ(doc.Find("push")->Find("window")->number_value, 4.0);
  EXPECT_DOUBLE_EQ(
      doc.Find("workers")->array[0].Find("loans_out")->number_value, 5.0);
  EXPECT_DOUBLE_EQ(
      doc.Find("rebalance")->Find("examples_moved")->number_value, 100.0);
}

TEST(StatusTest, ValidatorRejectsLiveClockOutsideWindow) {
  StatusSnapshot snap;
  snap.cmin = 5;
  snap.cmax = 8;
  snap.num_workers = 1;
  snap.num_live_workers = 1;
  WorkerStatus w;
  w.worker = 0;
  w.clock = 3;  // live but below cmin: the invariant the scraper checks
  w.live = true;
  snap.workers.push_back(w);
  const Status st = ValidateStatusJson(snap.ToJson());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("outside [cmin, cmax]"), std::string::npos)
      << st.ToString();
}

TEST(StatusTest, ValidatorRejectsWrongSchemaAndMissingFields) {
  EXPECT_FALSE(ValidateStatusJson("{}").ok());
  EXPECT_FALSE(
      ValidateStatusJson("{\"schema\":\"hetps.metrics.v1\"}").ok());
  EXPECT_FALSE(ValidateStatusJson("not json at all").ok());
}

}  // namespace
}  // namespace hetps
