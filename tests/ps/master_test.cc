#include "ps/master.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

TEST(MasterTest, StableVersionIsMinimumAcrossPartitions) {
  Master master(3, 2);
  EXPECT_EQ(master.StableVersion(), 0);
  master.ReportVersion(0, 5);
  master.ReportVersion(1, 3);
  EXPECT_EQ(master.StableVersion(), 0);  // partition 2 never reported
  master.ReportVersion(2, 7);
  EXPECT_EQ(master.StableVersion(), 3);
  EXPECT_EQ(master.PartitionVersion(2), 7);
}

TEST(MasterTest, VersionReportsAreMonotone) {
  Master master(1, 1);
  master.ReportVersion(0, 5);
  master.ReportVersion(0, 2);  // stale report must not regress
  EXPECT_EQ(master.PartitionVersion(0), 5);
}

TEST(MasterTest, DetectsStragglers) {
  Master master(1, 4);
  master.ReportClockTime(0, 1.0);
  master.ReportClockTime(1, 1.1);
  master.ReportClockTime(2, 1.5);
  master.ReportClockTime(3, 2.5);
  const auto stragglers = master.DetectStragglers(1.2);
  ASSERT_EQ(stragglers.size(), 2u);
  EXPECT_EQ(stragglers[0], 2);
  EXPECT_EQ(stragglers[1], 3);
  EXPECT_EQ(master.FastestWorker(), 0);
  EXPECT_DOUBLE_EQ(master.LastClockTime(3), 2.5);
}

TEST(MasterTest, NoReportsMeansNoStragglers) {
  Master master(1, 3);
  EXPECT_TRUE(master.DetectStragglers().empty());
  EXPECT_EQ(master.FastestWorker(), -1);
}

TEST(MasterTest, IgnoresUnreportedWorkersInDetection) {
  Master master(1, 3);
  master.ReportClockTime(0, 1.0);
  // Workers 1 and 2 never reported (time 0): not flagged.
  EXPECT_TRUE(master.DetectStragglers().empty());
}

TEST(MasterTest, DeadWorkersLeaveStragglerStatistics) {
  Master master(1, 4);
  master.ReportClockTime(0, 1.0);
  master.ReportClockTime(1, 1.1);
  master.ReportClockTime(2, 1.5);
  master.ReportClockTime(3, 2.5);
  ASSERT_EQ(master.DetectStragglers(1.2).size(), 2u);
  // Worker 3 dies: its frozen 2.5s clock time must stop counting as a
  // straggler signal (it would otherwise trigger shard moves forever).
  master.MarkWorkerDead(3);
  EXPECT_FALSE(master.IsWorkerLive(3));
  EXPECT_EQ(master.num_live_workers(), 3);
  const auto stragglers = master.DetectStragglers(1.2);
  ASSERT_EQ(stragglers.size(), 1u);
  EXPECT_EQ(stragglers[0], 2);
  // The fastest worker dying must not pin the baseline either.
  master.MarkWorkerDead(0);
  EXPECT_EQ(master.FastestWorker(), 1);
  // Late clock-time reports from a dead worker are dropped.
  master.ReportClockTime(3, 0.1);
  EXPECT_DOUBLE_EQ(master.LastClockTime(3), 2.5);
  // Revival restores participation.
  master.MarkWorkerLive(3);
  master.ReportClockTime(3, 0.9);
  EXPECT_EQ(master.FastestWorker(), 3);
  EXPECT_EQ(master.num_live_workers(), 3);
}

TEST(MasterTest, ReadmitStartsWithACleanTimingSlate) {
  // Regression: MarkWorkerLive used to leave the pre-eviction entry in
  // clock_times_, so a freshly readmitted worker was instantly
  // classified by its dead timing regime — DetectStragglers flagged it
  // (or FastestWorker crowned it) before it had run a single clock.
  Master master(1, 3);
  master.ReportClockTime(0, 1.0);
  master.ReportClockTime(1, 1.1);
  master.ReportClockTime(2, 9.0);  // heavy straggler...
  master.MarkWorkerDead(2);        // ...evicted...
  master.MarkWorkerLive(2);        // ...and readmitted.
  EXPECT_TRUE(master.IsWorkerLive(2));
  EXPECT_DOUBLE_EQ(master.LastClockTime(2), 0.0);
  // Unreported (t = 0) workers are never flagged: the rejoiner gets a
  // fresh chance instead of inheriting its 9.0s slot.
  EXPECT_TRUE(master.DetectStragglers(1.2).empty());
  EXPECT_EQ(master.FastestWorker(), 0);
  // The same holds if the rejoiner had been the *fastest*: a stale fast
  // slot must not crown it either.
  master.ReportClockTime(2, 0.1);
  ASSERT_EQ(master.FastestWorker(), 2);
  master.MarkWorkerDead(2);
  master.MarkWorkerLive(2);
  EXPECT_EQ(master.FastestWorker(), 0);
  // Its first real report re-enters it into the statistics.
  master.ReportClockTime(2, 5.0);
  const auto stragglers = master.DetectStragglers(1.2);
  ASSERT_EQ(stragglers.size(), 1u);
  EXPECT_EQ(stragglers[0], 2);
}

TEST(MasterTest, RestoreVersionsResetsClockTimesAndRevives) {
  // Regression: RestoreVersions used to leave stale clock_times_ behind,
  // so a restored run inherited the pre-crash timing regime and
  // misclassified stragglers from its very first clock.
  Master master(2, 3);
  master.ReportClockTime(0, 1.0);
  master.ReportClockTime(1, 9.0);  // pre-crash straggler
  master.MarkWorkerDead(2);
  master.ReportVersion(0, 4);
  master.ReportVersion(1, 6);

  master.RestoreVersions({4, 6});
  EXPECT_EQ(master.PartitionVersion(0), 4);
  EXPECT_EQ(master.PartitionVersion(1), 6);
  // Timing state is gone: no reports yet on the restored run.
  EXPECT_TRUE(master.DetectStragglers().empty());
  EXPECT_EQ(master.FastestWorker(), -1);
  EXPECT_DOUBLE_EQ(master.LastClockTime(1), 0.0);
  // Full membership again — a checkpoint predates eviction decisions.
  EXPECT_TRUE(master.IsWorkerLive(2));
  EXPECT_EQ(master.num_live_workers(), 3);
}

TEST(MasterDeathTest, ValidatesConstruction) {
  EXPECT_DEATH(Master(0, 1), "partition");
  EXPECT_DEATH(Master(1, 0), "worker");
}

}  // namespace
}  // namespace hetps
