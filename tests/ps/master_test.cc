#include "ps/master.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

TEST(MasterTest, StableVersionIsMinimumAcrossPartitions) {
  Master master(3, 2);
  EXPECT_EQ(master.StableVersion(), 0);
  master.ReportVersion(0, 5);
  master.ReportVersion(1, 3);
  EXPECT_EQ(master.StableVersion(), 0);  // partition 2 never reported
  master.ReportVersion(2, 7);
  EXPECT_EQ(master.StableVersion(), 3);
  EXPECT_EQ(master.PartitionVersion(2), 7);
}

TEST(MasterTest, VersionReportsAreMonotone) {
  Master master(1, 1);
  master.ReportVersion(0, 5);
  master.ReportVersion(0, 2);  // stale report must not regress
  EXPECT_EQ(master.PartitionVersion(0), 5);
}

TEST(MasterTest, DetectsStragglers) {
  Master master(1, 4);
  master.ReportClockTime(0, 1.0);
  master.ReportClockTime(1, 1.1);
  master.ReportClockTime(2, 1.5);
  master.ReportClockTime(3, 2.5);
  const auto stragglers = master.DetectStragglers(1.2);
  ASSERT_EQ(stragglers.size(), 2u);
  EXPECT_EQ(stragglers[0], 2);
  EXPECT_EQ(stragglers[1], 3);
  EXPECT_EQ(master.FastestWorker(), 0);
  EXPECT_DOUBLE_EQ(master.LastClockTime(3), 2.5);
}

TEST(MasterTest, NoReportsMeansNoStragglers) {
  Master master(1, 3);
  EXPECT_TRUE(master.DetectStragglers().empty());
  EXPECT_EQ(master.FastestWorker(), -1);
}

TEST(MasterTest, IgnoresUnreportedWorkersInDetection) {
  Master master(1, 3);
  master.ReportClockTime(0, 1.0);
  // Workers 1 and 2 never reported (time 0): not flagged.
  EXPECT_TRUE(master.DetectStragglers().empty());
}

TEST(MasterDeathTest, ValidatesConstruction) {
  EXPECT_DEATH(Master(0, 1), "partition");
  EXPECT_DEATH(Master(1, 0), "worker");
}

}  // namespace
}  // namespace hetps
