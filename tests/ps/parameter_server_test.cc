#include "ps/parameter_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/dyn_sgd.h"
#include "obs/metrics.h"

namespace hetps {
namespace {

PsOptions SmallOptions() {
  PsOptions opts;
  opts.num_servers = 2;
  opts.partitions_per_server = 2;
  opts.sync = SyncPolicy::Ssp(1);
  return opts;
}

TEST(ParameterServerTest, PushThenSnapshotRoundTrips) {
  SspRule rule;
  ParameterServer ps(10, 2, rule, SmallOptions());
  SparseVector u({0, 4, 9}, {1.0, 2.0, 3.0});
  ps.Push(0, 0, u);
  const auto w = ps.Snapshot();
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[4], 2.0);
  EXPECT_DOUBLE_EQ(w[9], 3.0);
  EXPECT_DOUBLE_EQ(w[5], 0.0);
}

TEST(ParameterServerTest, PullFullReturnsAssembledVectorAndCmin) {
  SspRule rule;
  ParameterServer ps(10, 2, rule, SmallOptions());
  ps.Push(0, 0, SparseVector({3}, {7.0}));
  ps.Push(1, 0, SparseVector({8}, {1.0}));
  int cmin = -1;
  const auto w = ps.PullFull(0, &cmin);
  EXPECT_DOUBLE_EQ(w[3], 7.0);
  EXPECT_DOUBLE_EQ(w[8], 1.0);
  EXPECT_EQ(cmin, 1);  // both workers finished clock 0
}

TEST(ParameterServerTest, ClockAccounting) {
  SspRule rule;
  ParameterServer ps(4, 3, rule, SmallOptions());
  EXPECT_EQ(ps.cmin(), 0);
  ps.Push(0, 0, SparseVector());
  ps.Push(0, 1, SparseVector());
  EXPECT_EQ(ps.cmax(), 2);
  EXPECT_EQ(ps.cmin(), 0);
  ps.Push(1, 0, SparseVector());
  ps.Push(2, 0, SparseVector());
  EXPECT_EQ(ps.cmin(), 1);
}

TEST(ParameterServerTest, CanAdvanceFollowsPolicy) {
  SspRule rule;
  PsOptions opts = SmallOptions();
  opts.sync = SyncPolicy::Ssp(1);
  ParameterServer ps(4, 2, rule, opts);
  EXPECT_TRUE(ps.CanAdvance(0, 1));
  EXPECT_FALSE(ps.CanAdvance(0, 2));
  ps.Push(0, 0, SparseVector());
  ps.Push(1, 0, SparseVector());
  EXPECT_TRUE(ps.CanAdvance(0, 2));
}

TEST(ParameterServerTest, WaitUntilCanAdvanceWakesOnPush) {
  SspRule rule;
  PsOptions opts = SmallOptions();
  opts.sync = SyncPolicy::Bsp();
  ParameterServer ps(4, 2, rule, opts);
  ps.Push(0, 0, SparseVector({0}, {1.0}));
  std::thread waiter([&] { ps.WaitUntilCanAdvance(0, 1); });
  // Worker 1's push completes the barrier and must wake the waiter.
  ps.Push(1, 0, SparseVector({1}, {1.0}));
  waiter.join();
  SUCCEED();
}

TEST(ParameterServerTest, PullRangeReturnsRequestedWindow) {
  SspRule rule;
  ParameterServer ps(20, 1, rule, SmallOptions());
  ps.Push(0, 0, SparseVector({3, 7, 15}, {1.0, 2.0, 3.0}));
  const auto window = ps.PullRange(0, 5, 16);
  ASSERT_EQ(window.size(), 11u);
  EXPECT_DOUBLE_EQ(window[7 - 5], 2.0);
  EXPECT_DOUBLE_EQ(window[15 - 5], 3.0);
  EXPECT_DOUBLE_EQ(window[0], 0.0);
  // Full-range pull equals the snapshot.
  EXPECT_EQ(ps.PullRange(0, 0, 20), ps.Snapshot());
  EXPECT_TRUE(ps.PullRange(0, 4, 4).empty());
}

TEST(ParameterServerDeathTest, PullRangeValidates) {
  SspRule rule;
  ParameterServer ps(20, 1, rule, SmallOptions());
  EXPECT_DEATH(ps.PullRange(0, 5, 3), "bad key interval");
  EXPECT_DEATH(ps.PullRange(0, 0, 21), "bad key interval");
}

TEST(ParameterServerTest, UpdateFilterDropsTinyEntries) {
  SspRule rule;
  PsOptions opts = SmallOptions();
  opts.update_filter_epsilon = 1e-6;
  ParameterServer ps(4, 1, rule, opts);
  ps.Push(0, 0, SparseVector({0, 1}, {1e-9, 0.5}));
  const auto w = ps.Snapshot();
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
}

TEST(ParameterServerTest, TotalPushesSkipsEmptyPiecesForNoOpRules) {
  SspRule rule;
  ParameterServer ps(10, 1, rule, SmallOptions());
  ps.Push(0, 0, SparseVector({0}, {1.0}));
  // SspRule declares EmptyPushIsNoOp(): the single-key push touches one
  // partition; the three empty pieces are skipped entirely.
  EXPECT_EQ(ps.TotalPushes(), 1);
  // The clock still advanced exactly once.
  EXPECT_EQ(ps.cmax(), 1);
  ps.Push(0, 1, SparseVector({0, 3, 5, 8}, {1.0, 1.0, 1.0, 1.0}));
  // A push spanning all four partitions counts four pieces.
  EXPECT_EQ(ps.TotalPushes(), 5);
}

TEST(ParameterServerTest, FilterEmptiedPiecesAreSkippedButClockAdvances) {
  SspRule rule;
  PsOptions opts = SmallOptions();
  opts.update_filter_epsilon = 1e-6;
  ParameterServer ps(10, 1, rule, opts);
  // Every entry is below epsilon: the whole push is filtered away.
  ps.Push(0, 0, SparseVector({0, 3, 5, 8}, {1e-9, 1e-9, 1e-9, 1e-9}));
  EXPECT_EQ(ps.TotalPushes(), 0);
  // The worker still finished clock 0 — SSP admission must not stall.
  EXPECT_EQ(ps.cmax(), 1);
  EXPECT_EQ(ps.cmin(), 1);
  EXPECT_TRUE(ps.CanAdvance(0, 2));
}

TEST(ParameterServerTest, EmptyPiecesStillCountForVersionTrackingRules) {
  // DynSGD treats an empty piece as the "worker finished this clock
  // here" marker the stable-version bookkeeping counts, so pieces are
  // not skipped.
  DynSgdRule rule;
  ParameterServer ps(10, 1, rule, SmallOptions());
  ps.Push(0, 0, SparseVector({0}, {1.0}));
  EXPECT_EQ(ps.TotalPushes(), 4);
}

TEST(ParameterServerTest, ReadmittedWorkerMayPushAtItsReadmitClock) {
  // Regression (liveness x DynSGD): worker 0 pushes clock 0, is evicted,
  // and rejoins at cmin = 0 (the survivors have not pushed yet). Its
  // V(0) = 1 from the dead regime must be rebased to the readmission
  // clock — otherwise the survivors' clock-0 pushes raise the all-worker
  // version minimum to 1, version 0 is folded, and worker 0's legitimate
  // push at its admitted clock aborts the server.
  DynSgdRule rule;
  PsOptions opts = SmallOptions();
  opts.sync = SyncPolicy::Asp();
  ParameterServer ps(10, 3, rule, opts);
  ps.Push(0, 0, SparseVector({0}, {1.0}));
  ASSERT_TRUE(ps.EvictWorker(0));
  ASSERT_EQ(ps.cmin(), 0);
  ASSERT_TRUE(ps.ReadmitWorker(0, ps.cmin()).ok());
  ps.Push(1, 0, SparseVector({1}, {1.0}));
  ps.Push(2, 0, SparseVector({2}, {1.0}));
  // Without the rebase this push dies on DynSGD's evicted-version check.
  ps.Push(0, 0, SparseVector({3}, {1.0}));
  EXPECT_TRUE(ps.IsWorkerLive(0));
  EXPECT_EQ(ps.cmin(), 1);
}

TEST(ParameterServerTest, MasterSeesCompletedVersions) {
  DynSgdRule rule;
  PsOptions opts = SmallOptions();
  opts.partition_sync = true;
  ParameterServer ps(8, 2, rule, opts);
  EXPECT_EQ(ps.StableVersion(), 0);
  ps.Push(0, 0, SparseVector({0, 7}, {1.0, 1.0}));
  // Version 0 is not complete until both workers contributed.
  EXPECT_EQ(ps.StableVersion(), 0);
  ps.Push(1, 0, SparseVector({3}, {1.0}));
  EXPECT_EQ(ps.StableVersion(), 1);
}

TEST(ParameterServerTest, PartitionSyncPullUsesStableVersion) {
  DynSgdRule::Options dopts;
  dopts.mode = DynSgdRule::ApplyMode::kDeferred;
  DynSgdRule rule(dopts);
  PsOptions opts;
  opts.num_servers = 1;
  opts.partitions_per_server = 2;
  opts.partition_sync = true;
  ParameterServer ps(2, 2, rule, opts);
  // Both workers complete clock 0 on both partitions.
  for (int worker = 0; worker < 2; ++worker) {
    const auto pieces = ps.partitioner().SplitByPartition(
        SparseVector({0, 1}, {1.0, 2.0}));
    for (int p = 0; p < 2; ++p) {
      ps.PushPiece(p, worker, 0, pieces[static_cast<size_t>(p)], p == 1);
    }
  }
  EXPECT_EQ(ps.StableVersion(), 1);
  // Worker 0's clock-1 piece reaches only the partition of key 0; the
  // other piece is still in flight.
  const int hot = ps.partitioner().PartitionOf(0);
  const auto pieces2 =
      ps.partitioner().SplitByPartition(SparseVector({0}, {10.0}));
  ps.PushPiece(hot, 0, 1, pieces2[static_cast<size_t>(hot)], false);
  // A synchronized pull serves the consistent clock-0 state, ignoring
  // the in-flight clock-1 fragment.
  const auto w = ps.PullFull(1);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 2.0);
}

TEST(ParameterServerTest, MemoryAccountingAggregatesShards) {
  DynSgdRule rule;
  ParameterServer ps(100, 2, rule, SmallOptions());
  EXPECT_EQ(ps.ParamMemoryBytes(), 100 * sizeof(double));
  const size_t before = ps.AuxMemoryBytes();
  ps.Push(0, 0, SparseVector({0, 50}, {1.0, 1.0}));
  EXPECT_GT(ps.AuxMemoryBytes(), before);
}

TEST(ParameterServerTest, ConcurrentPushesAreSafe) {
  SspRule rule;
  PsOptions opts = SmallOptions();
  opts.sync = SyncPolicy::Asp();
  ParameterServer ps(32, 4, rule, opts);
  std::vector<std::thread> threads;
  for (int m = 0; m < 4; ++m) {
    threads.emplace_back([&ps, m] {
      for (int c = 0; c < 50; ++c) {
        SparseVector u;
        u.PushBack(m, 1.0);
        u.PushBack(16 + m, 1.0);
        ps.Push(m, c, u);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto w = ps.Snapshot();
  for (int m = 0; m < 4; ++m) {
    EXPECT_DOUBLE_EQ(w[static_cast<size_t>(m)], 50.0);
    EXPECT_DOUBLE_EQ(w[static_cast<size_t>(16 + m)], 50.0);
  }
  EXPECT_EQ(ps.cmin(), 50);
}

TEST(ParameterServerTest, EvictionUnblocksWaitingSurvivor) {
  // The liveness hole end to end at PS granularity: under SSP(1) with
  // two workers, worker 1 dies at clock 0 while worker 0 runs ahead and
  // blocks at the admission gate. EvictWorker must repair cmin and wake
  // the blocked survivor — without it this test would hang forever.
  SspRule rule;
  PsOptions opts = SmallOptions();
  opts.sync = SyncPolicy::Ssp(1);
  ParameterServer ps(4, 2, rule, opts);
  ps.Push(0, 0, SparseVector({0}, {1.0}));
  ps.Push(0, 1, SparseVector({0}, {1.0}));
  ASSERT_FALSE(ps.CanAdvance(0, 2));  // worker 1 pins cmin at 0
  const int64_t repairs_before =
      GlobalMetrics().counter("ps.cmin_repairs")->value();
  std::atomic<bool> admitted{false};
  std::thread waiter([&] { admitted = ps.WaitUntilCanAdvance(0, 2); });
  EXPECT_TRUE(ps.EvictWorker(1));
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(ps.cmin(), 2);
  EXPECT_FALSE(ps.IsWorkerLive(1));
  EXPECT_EQ(ps.num_live_workers(), 1);
  EXPECT_EQ(GlobalMetrics().counter("ps.cmin_repairs")->value(),
            repairs_before + 1);
  // Evicting again is a no-op.
  EXPECT_FALSE(ps.EvictWorker(1));
}

TEST(ParameterServerTest, VictimsOwnWaitReturnsNotAdmitted) {
  SspRule rule;
  PsOptions opts = SmallOptions();
  opts.sync = SyncPolicy::Ssp(1);
  ParameterServer ps(4, 2, rule, opts);
  ps.Push(1, 0, SparseVector());
  ps.Push(1, 1, SparseVector());
  // Worker 1 blocks at clock 2 (worker 0 is behind), then gets evicted:
  // its wait must return false (not admitted), never true.
  std::atomic<bool> admitted{true};
  std::thread victim([&] { admitted = ps.WaitUntilCanAdvance(1, 2); });
  EXPECT_TRUE(ps.EvictWorker(1));
  victim.join();
  EXPECT_FALSE(admitted.load());
  // And once evicted, the fast path refuses immediately too.
  EXPECT_FALSE(ps.WaitUntilCanAdvance(1, 2));
  EXPECT_FALSE(ps.CanAdvance(1, 1));
}

TEST(ParameterServerTest, EvictedPushesAreDroppedAndCounted) {
  SspRule rule;
  ParameterServer ps(4, 2, rule, SmallOptions());
  ps.Push(0, 0, SparseVector({0}, {1.0}));
  ASSERT_TRUE(ps.EvictWorker(1));
  const int64_t dropped_before =
      GlobalMetrics().counter("ps.evicted_pushes_dropped")->value();
  // A late push from the dead worker: state and clocks must not move.
  ps.Push(1, 0, SparseVector({1}, {5.0}));
  EXPECT_DOUBLE_EQ(ps.Snapshot()[1], 0.0);
  EXPECT_EQ(ps.cmin(), 1);
  EXPECT_EQ(GlobalMetrics().counter("ps.evicted_pushes_dropped")->value(),
            dropped_before + 1);
}

TEST(ParameterServerTest, ReadmitRestoresMembership) {
  SspRule rule;
  PsOptions opts = SmallOptions();
  opts.sync = SyncPolicy::Ssp(1);
  ParameterServer ps(4, 2, rule, opts);
  ps.Push(0, 0, SparseVector());
  ps.EvictWorker(1);
  ASSERT_EQ(ps.cmin(), 1);
  EXPECT_TRUE(ps.ReadmitWorker(1, ps.cmin()).ok());
  EXPECT_TRUE(ps.IsWorkerLive(1));
  EXPECT_EQ(ps.num_live_workers(), 2);
  // The readmitted worker participates in the gate again: its pushes
  // count and it pins cmin until it catches up.
  ps.Push(0, 1, SparseVector());
  EXPECT_EQ(ps.cmin(), 1);
  ps.Push(1, 1, SparseVector());
  EXPECT_EQ(ps.cmin(), 2);
  // Readmitting a live worker is rejected, not applied twice.
  EXPECT_TRUE(ps.ReadmitWorker(1, ps.cmin()).IsFailedPrecondition());
}

// Regression: a rejoin clock behind cmin used to abort the whole server
// via a hard CHECK inside ClockTable. It is client-controlled input, so
// it must come back as FailedPrecondition with the table untouched.
TEST(ParameterServerTest, ReadmitBehindCminIsFailedPrecondition) {
  SspRule rule;
  PsOptions opts = SmallOptions();
  opts.sync = SyncPolicy::Ssp(1);
  ParameterServer ps(4, 2, rule, opts);
  for (int c = 0; c < 3; ++c) {
    ps.Push(0, c, SparseVector());
    ps.Push(1, c, SparseVector());
  }
  ps.EvictWorker(1);
  ASSERT_EQ(ps.cmin(), 3);
  const Status st = ps.ReadmitWorker(1, 1);
  EXPECT_TRUE(st.IsFailedPrecondition());
  EXPECT_NE(st.message().find("cmin"), std::string::npos);
  EXPECT_FALSE(ps.IsWorkerLive(1));
  // Retrying at the frontier succeeds.
  EXPECT_TRUE(ps.ReadmitWorker(1, ps.cmin()).ok());
  EXPECT_TRUE(ps.IsWorkerLive(1));
}

TEST(ParameterServerTest, DebugStringDescribesSetup) {
  SspRule rule;
  ParameterServer ps(10, 2, rule, SmallOptions());
  const std::string s = ps.DebugString();
  EXPECT_NE(s.find("dim=10"), std::string::npos);
  EXPECT_NE(s.find("SSP"), std::string::npos);
}

}  // namespace
}  // namespace hetps
