#include "ps/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/dyn_sgd.h"
#include "util/rng.h"

namespace hetps {
namespace {

PsOptions Options() {
  PsOptions opts;
  opts.num_servers = 2;
  opts.partitions_per_server = 2;
  opts.sync = SyncPolicy::Ssp(2);
  return opts;
}

// Drives some realistic traffic through the PS.
void PushTraffic(ParameterServer* ps, int clocks) {
  Rng rng(4);
  for (int c = 0; c < clocks; ++c) {
    for (int m = 0; m < ps->num_workers(); ++m) {
      SparseVector u;
      for (int64_t j = 0; j < ps->dim(); ++j) {
        if (rng.NextBernoulli(0.3)) u.PushBack(j, rng.NextGaussian());
      }
      ps->Push(m, c, u);
      if (c % 2 == 1) ps->PullFull(m);
    }
  }
}

TEST(CheckpointTest, RoundTripRestoresDynSgdStateExactly) {
  DynSgdRule rule;
  ParameterServer ps(24, 3, rule, Options());
  PushTraffic(&ps, 5);
  const std::vector<double> before = ps.Snapshot();

  std::stringstream buffer;
  ASSERT_TRUE(ps.SaveCheckpoint(buffer).ok());

  // A freshly constructed server restores to identical state.
  ParameterServer restored(24, 3, rule, Options());
  ASSERT_TRUE(restored.LoadCheckpoint(buffer).ok());
  EXPECT_EQ(restored.Snapshot(), before);
  EXPECT_EQ(restored.cmin(), ps.cmin());
  EXPECT_EQ(restored.cmax(), ps.cmax());
  EXPECT_EQ(restored.StableVersion(), ps.StableVersion());
  EXPECT_EQ(restored.TotalPushes(), ps.TotalPushes());
  EXPECT_EQ(restored.AuxMemoryBytes(), ps.AuxMemoryBytes());
}

TEST(CheckpointTest, TrainingContinuesIdenticallyAfterRestore) {
  DynSgdRule rule;
  ParameterServer original(16, 2, rule, Options());
  PushTraffic(&original, 4);

  std::stringstream buffer;
  ASSERT_TRUE(original.SaveCheckpoint(buffer).ok());
  ParameterServer restored(16, 2, rule, Options());
  ASSERT_TRUE(restored.LoadCheckpoint(buffer).ok());

  // Apply the same subsequent pushes to both; states must stay equal —
  // including DynSGD's version revision behaviour.
  for (int c = 4; c < 7; ++c) {
    for (int m = 0; m < 2; ++m) {
      SparseVector u({static_cast<int64_t>(m), 10},
                     {1.0 + c, 0.5 * (m + 1)});
      original.Push(m, c, u);
      restored.Push(m, c, u);
    }
  }
  EXPECT_EQ(original.Snapshot(), restored.Snapshot());
  EXPECT_EQ(original.cmin(), restored.cmin());
}

TEST(CheckpointTest, WorksForStatelessRules) {
  SspRule rule;
  ParameterServer ps(8, 2, rule, Options());
  ps.Push(0, 0, SparseVector({1, 5}, {2.0, -1.0}));
  std::stringstream buffer;
  ASSERT_TRUE(ps.SaveCheckpoint(buffer).ok());
  ParameterServer restored(8, 2, rule, Options());
  ASSERT_TRUE(restored.LoadCheckpoint(buffer).ok());
  EXPECT_EQ(restored.Snapshot(), ps.Snapshot());
}

TEST(CheckpointTest, RejectsShapeMismatch) {
  DynSgdRule rule;
  ParameterServer ps(8, 2, rule, Options());
  std::stringstream buffer;
  ASSERT_TRUE(ps.SaveCheckpoint(buffer).ok());
  ParameterServer wrong_dim(16, 2, rule, Options());
  EXPECT_TRUE(
      wrong_dim.LoadCheckpoint(buffer).IsInvalidArgument());
  std::stringstream buffer2;
  ASSERT_TRUE(ps.SaveCheckpoint(buffer2).ok());
  ParameterServer wrong_workers(8, 3, rule, Options());
  EXPECT_TRUE(
      wrong_workers.LoadCheckpoint(buffer2).IsInvalidArgument());
}

TEST(CheckpointTest, RejectsGarbage) {
  DynSgdRule rule;
  ParameterServer ps(8, 2, rule, Options());
  std::stringstream buffer("not a checkpoint\n");
  EXPECT_FALSE(ps.LoadCheckpoint(buffer).ok());
  std::stringstream truncated("hetps-checkpoint v1\n8 2");
  EXPECT_FALSE(ps.LoadCheckpoint(truncated).ok());
}

TEST(CheckpointTest, FailedRestoreLeavesServerUntouched) {
  // LoadCheckpoint is transactional: any decode failure must leave the
  // live server exactly as it was — a truncated file can never
  // half-restore. Truncate a valid checkpoint at every prefix length
  // that still fails to parse and verify state is bit-identical.
  DynSgdRule rule;
  ParameterServer source(16, 2, rule, Options());
  PushTraffic(&source, 4);
  std::stringstream buffer;
  ASSERT_TRUE(source.SaveCheckpoint(buffer).ok());
  const std::string full = buffer.str();

  ParameterServer target(16, 2, rule, Options());
  PushTraffic(&target, 2);  // distinct, nontrivial live state
  const std::vector<double> before = target.Snapshot();
  const int cmin_before = target.cmin();
  const int cmax_before = target.cmax();
  const int64_t pushes_before = target.TotalPushes();
  const int64_t stable_before = target.StableVersion();

  // A handful of truncation points spread across the file, including
  // mid-shard ones.
  for (size_t frac = 1; frac <= 9; ++frac) {
    const size_t len = full.size() * frac / 10;
    std::stringstream truncated(full.substr(0, len));
    const Status s = target.LoadCheckpoint(truncated);
    ASSERT_FALSE(s.ok()) << "prefix of " << len << " bytes parsed?";
    EXPECT_EQ(target.Snapshot(), before) << "len=" << len;
    EXPECT_EQ(target.cmin(), cmin_before);
    EXPECT_EQ(target.cmax(), cmax_before);
    EXPECT_EQ(target.TotalPushes(), pushes_before);
    EXPECT_EQ(target.StableVersion(), stable_before);
  }

  // After all the failed attempts, a good checkpoint still restores.
  std::stringstream good(full);
  ASSERT_TRUE(target.LoadCheckpoint(good).ok());
  EXPECT_EQ(target.Snapshot(), source.Snapshot());
}

TEST(CheckpointTest, FileRoundTrip) {
  DynSgdRule rule;
  ParameterServer ps(12, 2, rule, Options());
  PushTraffic(&ps, 3);
  const std::string path = testing::TempDir() + "/hetps_ckpt_test.txt";
  ASSERT_TRUE(SaveCheckpointToFile(ps, path).ok());
  ParameterServer restored(12, 2, rule, Options());
  ASSERT_TRUE(RestoreCheckpointFromFile(&restored, path).ok());
  EXPECT_EQ(restored.Snapshot(), ps.Snapshot());
  std::remove(path.c_str());
  EXPECT_FALSE(RestoreCheckpointFromFile(&restored, path).ok());
}

TEST(CheckpointTest, PreservesSparseLayout) {
  DynSgdRule rule;
  PsOptions opts = Options();
  ParameterServer ps(1000, 2, rule, opts);
  ps.Push(0, 0, SparseVector({5}, {1.0}));
  // Force one block sparse by compacting via checkpoint restore.
  std::stringstream buffer;
  ASSERT_TRUE(ps.SaveCheckpoint(buffer).ok());
  ParameterServer restored(1000, 2, rule, opts);
  ASSERT_TRUE(restored.LoadCheckpoint(buffer).ok());
  for (int p = 0; p < restored.num_partitions(); ++p) {
    EXPECT_EQ(restored.shard(p).param().is_sparse(),
              ps.shard(p).param().is_sparse());
  }
}

}  // namespace
}  // namespace hetps
