#include "ps/versioned_store.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetps {
namespace {

// A toy instantiation: versions = clocks, aggregate = running mean of
// scalar updates (the DynSGD revision), expire once all workers pushed.
class MeanStoreFixture {
 public:
  explicit MeanStoreFixture(int workers)
      : workers_(workers),
        progress_(static_cast<size_t>(workers), 0),
        store_(
            [](int worker, int clock) {
              (void)worker;
              return static_cast<int64_t>(clock);
            },
            [](const double& u, int64_t count, double* agg) {
              // mean revision: agg <- (agg*count + u) / (count+1)
              *agg = (*agg * static_cast<double>(count) + u) /
                     static_cast<double>(count + 1);
            },
            [this](int64_t version) {
              for (int p : progress_) {
                if (p <= version) return false;
              }
              return true;
            },
            [this](int64_t version, const double& agg) {
              folded_.push_back({version, agg});
            }) {}

  void Push(int worker, int clock, double value) {
    store_.Apply(worker, clock, value);
    progress_[static_cast<size_t>(worker)] = clock + 1;
    // Re-run eviction opportunities via a zero-impact probe is not
    // needed: Apply evicts after updating progress on the next push.
  }

  int workers_;
  std::vector<int> progress_;
  std::vector<std::pair<int64_t, double>> folded_;
  VersionedStore<double, double> store_;
};

TEST(VersionedStoreTest, AggregatesPerVersion) {
  MeanStoreFixture f(2);
  f.Push(0, 0, 2.0);
  EXPECT_EQ(f.store_.live_versions(), 1u);
  EXPECT_DOUBLE_EQ(*f.store_.Peek(0), 2.0);
  f.Push(0, 1, 10.0);
  EXPECT_EQ(f.store_.live_versions(), 2u);
  EXPECT_DOUBLE_EQ(*f.store_.Peek(1), 10.0);
  EXPECT_EQ(f.store_.CountOf(0), 1);
}

TEST(VersionedStoreTest, UpdateFnRevisesAggregates) {
  MeanStoreFixture f(3);
  f.Push(0, 0, 3.0);
  f.Push(1, 0, 9.0);
  EXPECT_DOUBLE_EQ(*f.store_.Peek(0), 6.0);  // mean
  EXPECT_EQ(f.store_.CountOf(0), 2);
}

TEST(VersionedStoreTest, ExpireFoldsInOrder) {
  MeanStoreFixture f(2);
  f.Push(0, 0, 1.0);
  f.Push(0, 1, 2.0);
  f.Push(1, 0, 3.0);  // version 0 complete, expires on next Apply
  f.Push(1, 1, 4.0);  // triggers eviction of v0 (and then v1)
  ASSERT_GE(f.folded_.size(), 1u);
  EXPECT_EQ(f.folded_[0].first, 0);
  EXPECT_DOUBLE_EQ(f.folded_[0].second, 2.0);  // mean(1,3)
  if (f.folded_.size() > 1) {
    EXPECT_EQ(f.folded_[1].first, 1);
  }
}

TEST(VersionedStoreTest, ForEachVisitsAscending) {
  MeanStoreFixture f(2);
  f.Push(0, 0, 1.0);
  f.Push(0, 1, 2.0);
  f.Push(0, 2, 3.0);
  std::vector<int64_t> seen;
  f.store_.ForEach(
      [&](int64_t v, const double& agg) {
        (void)agg;
        seen.push_back(v);
      });
  EXPECT_EQ(seen, (std::vector<int64_t>{0, 1, 2}));
}

TEST(VersionedStoreDeathTest, RejectsUpdateToExpiredVersion) {
  MeanStoreFixture f(1);  // single worker: versions expire immediately
  f.Push(0, 0, 1.0);
  f.Push(0, 1, 1.0);  // expires v0
  EXPECT_DEATH(f.store_.Apply(0, 0, 1.0), "already-expired");
}

TEST(VersionedStoreDeathTest, RequiresAllUdfs) {
  using Store = VersionedStore<int, int>;
  EXPECT_DEATH(Store(nullptr, [](const int&, int64_t, int*) {},
                     [](int64_t) { return false; },
                     [](int64_t, const int&) {}),
               "required");
}

}  // namespace
}  // namespace hetps
