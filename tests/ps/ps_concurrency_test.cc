// Multithreaded regression and stress tests for the ParameterServer
// lock-ordering discipline (parameter_server.h). Run these under
// ThreadSanitizer (scripts/run_sanitizers.sh tsan) — several of them
// exist precisely because TSan or a deadlock caught a real bug.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "core/dyn_sgd.h"
#include "ps/parameter_server.h"
#include "util/rng.h"

namespace hetps {
namespace {

PsOptions StressOptions() {
  PsOptions opts;
  opts.num_servers = 2;
  opts.partitions_per_server = 2;
  opts.sync = SyncPolicy::Asp();  // no admission blocking in stress loops
  return opts;
}

// Regression: SaveCheckpoint took clock_mu_ then shard_mu_[p] while
// PullPiece took shard_mu_[p] then clock_mu_ (to read cmax for the
// OnPull stamp) — a classic ABBA deadlock under concurrent pulls and
// checkpoints. Fixed by snapshotting cmax *before* the shard lock.
// Before the fix this test wedged within a few hundred iterations.
TEST(PsConcurrencyTest, PullsRaceCheckpointsWithoutDeadlock) {
  DynSgdRule rule;
  ParameterServer ps(64, 4, rule, StressOptions());
  // Seed some state so pulls and checkpoints do real work.
  for (int m = 0; m < 4; ++m) {
    ps.Push(m, 0, SparseVector({static_cast<int64_t>(m), 40}, {1.0, 0.5}));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> checkpoints{0};

  std::thread checkpointer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::ostringstream sink;
      ASSERT_TRUE(ps.SaveCheckpoint(sink).ok());
      checkpoints.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> pullers;
  for (int m = 0; m < 3; ++m) {
    pullers.emplace_back([&, m] {
      for (int i = 0; i < 400; ++i) {
        // PullPiece is the shard->clock path that deadlocked.
        for (int p = 0; p < ps.num_partitions(); ++p) {
          ps.PullPiece(p, m);
        }
        ps.PullFull(m);
      }
    });
  }
  for (auto& t : pullers) t.join();
  stop.store(true, std::memory_order_relaxed);
  checkpointer.join();
  EXPECT_GT(checkpoints.load(), 0);
}

// Full-mix stress: concurrent pushes, full pulls, snapshots and
// checkpoints. Checks invariants loosely (exact values depend on
// interleaving) but TSan verifies the locking.
TEST(PsConcurrencyTest, ConcurrentPushPullSnapshotCheckpoint) {
  SspRule rule;
  const int kWorkers = 4;
  const int kClocks = 60;
  ParameterServer ps(128, kWorkers, rule, StressOptions());

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int m = 0; m < kWorkers; ++m) {
    threads.emplace_back([&, m] {
      Rng rng(100 + m);
      for (int c = 0; c < kClocks; ++c) {
        SparseVector u;
        for (int64_t j = 0; j < ps.dim(); ++j) {
          if (rng.NextBernoulli(0.1)) u.PushBack(j, 1.0);
        }
        ps.Push(m, c, u);
        if (c % 5 == 0) ps.PullFull(m);
        if (c % 7 == 0) ps.PullRange(m, 10, 90);
      }
    });
  }
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = ps.Snapshot();
      ASSERT_EQ(snap.size(), 128u);
      std::ostringstream sink;
      ASSERT_TRUE(ps.SaveCheckpoint(sink).ok());
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  observer.join();

  // Every worker finished every clock.
  EXPECT_EQ(ps.cmin(), kClocks);
  EXPECT_EQ(ps.cmax(), kClocks);
}

// LoadCheckpoint commits shadow state under the full lock hierarchy
// while readers keep pulling: restores must never tear a pull (a pull
// sees either the old or the new state per partition, and never
// crashes or races).
TEST(PsConcurrencyTest, RestoreRacesPullsSafely) {
  DynSgdRule rule;
  ParameterServer ps(32, 2, rule, StressOptions());
  ps.Push(0, 0, SparseVector({1}, {1.0}));
  ps.Push(1, 0, SparseVector({20}, {2.0}));
  std::stringstream buffer;
  ASSERT_TRUE(ps.SaveCheckpoint(buffer).ok());
  const std::string ckpt = buffer.str();
  // Every restore returns to exactly this state, so concurrent pulls
  // must always observe it (the rule's materialization is
  // deterministic).
  const std::vector<double> expected = ps.Snapshot();

  std::atomic<bool> stop{false};
  std::thread restorer([&] {
    for (int i = 0; i < 50; ++i) {
      std::stringstream is(ckpt);
      ASSERT_TRUE(ps.LoadCheckpoint(is).ok());
    }
    stop.store(true, std::memory_order_relaxed);
  });
  std::vector<std::thread> pullers;
  for (int m = 0; m < 2; ++m) {
    pullers.emplace_back([&, m] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto w = ps.PullFull(m);
        ASSERT_EQ(w.size(), 32u);
        EXPECT_DOUBLE_EQ(w[1], expected[1]);
        EXPECT_DOUBLE_EQ(w[20], expected[20]);
      }
    });
  }
  restorer.join();
  for (auto& t : pullers) t.join();
}

// SSP waiters blocked in WaitUntilCanAdvance must wake when a restore
// rewinds/advances the clock table (the commit notifies clock_cv_).
TEST(PsConcurrencyTest, RestoreWakesSspWaiters) {
  SspRule rule;
  PsOptions opts = StressOptions();
  opts.sync = SyncPolicy::Ssp(1);
  ParameterServer slow(8, 2, rule, opts);

  // Build a checkpoint where both workers finished clock 1.
  ParameterServer fast(8, 2, rule, opts);
  for (int c = 0; c < 2; ++c) {
    fast.Push(0, c, SparseVector({0}, {1.0}));
    fast.Push(1, c, SparseVector({1}, {1.0}));
  }
  std::stringstream buffer;
  ASSERT_TRUE(fast.SaveCheckpoint(buffer).ok());

  // Worker 0 in `slow` is ahead and blocks on clock 3 admission.
  slow.Push(0, 0, SparseVector({0}, {1.0}));
  slow.Push(0, 1, SparseVector({0}, {1.0}));
  std::thread waiter([&] { slow.WaitUntilCanAdvance(0, 3); });
  // The restore brings cmin to 2, admitting clock 3 under SSP(1).
  ASSERT_TRUE(slow.LoadCheckpoint(buffer).ok());
  waiter.join();
  EXPECT_EQ(slow.cmin(), 2);
}

// Eviction races pushers: while every worker hammers pushes, an
// eviction/readmission thread repeatedly removes and restores one
// worker. Sampled invariant: cmin <= cmax at all times, and the run
// terminates (no waiter left stranded, no deadlock between the clock
// lock and the shard locks). TSan verifies the locking.
TEST(PsConcurrencyTest, EvictReadmitRacesPushers) {
  SspRule rule;
  const int kWorkers = 4;
  const int kClocks = 80;
  ParameterServer ps(64, kWorkers, rule, StressOptions());

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int m = 0; m < kWorkers; ++m) {
    threads.emplace_back([&, m] {
      for (int c = 0; c < kClocks; ++c) {
        SparseVector u;
        u.PushBack(m, 1.0);
        u.PushBack(32 + m, 1.0);
        // Worker 3's pushes may be dropped while it is evicted — that is
        // the point: drops must be silent, counted, and non-corrupting.
        ps.Push(m, c, u);
        if (c % 9 == 0) ps.PullFull(m);
      }
    });
  }
  std::thread churner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (ps.EvictWorker(3)) {
        // Rejoin at the current frontier, as a recovered worker would.
        ps.ReadmitWorker(3, ps.cmin());
      }
      ASSERT_LE(ps.cmin(), ps.cmax());
      ASSERT_GE(ps.num_live_workers(), kWorkers - 1);
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  churner.join();

  // Readmit one last time so the final-state checks are deterministic.
  ps.ReadmitWorker(3, ps.cmin());
  EXPECT_LE(ps.cmin(), ps.cmax());
  // Workers 0-2 were never evicted: all their clocks landed.
  EXPECT_EQ(ps.cmax(), kClocks);
}

// Shard-parallel push apply must be a pure scheduling change: the same
// push sequence lands on the same state whether pieces apply serially
// or fan out over the shared pool (pieces of one push touch distinct
// shards, so apply order cannot matter).
TEST(PsConcurrencyTest, ParallelPushApplyMatchesSerial) {
  DynSgdRule rule;
  auto run = [&](int push_parallelism) {
    PsOptions opts = StressOptions();
    opts.partitions_per_server = 4;  // 8 partitions: real fan-out
    opts.push_parallelism = push_parallelism;
    ParameterServer ps(128, 2, rule, opts);
    Rng rng(9);
    for (int c = 0; c < 20; ++c) {
      for (int m = 0; m < 2; ++m) {
        SparseVector u;
        for (int64_t j = 0; j < ps.dim(); ++j) {
          if (rng.NextBernoulli(0.2)) u.PushBack(j, 0.1 * (m + 1));
        }
        ps.Push(m, c, u);
      }
    }
    EXPECT_EQ(ps.cmin(), 20);  // AdvanceClock fired once per push
    return ps.Snapshot();
  };
  const std::vector<double> serial = run(1);
  const std::vector<double> parallel = run(4);
  const std::vector<double> auto_sized = run(0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]) << "index " << i;
    EXPECT_DOUBLE_EQ(serial[i], auto_sized[i]) << "index " << i;
  }
}

// Edge configurations of the pool-sizing knobs: 0 (auto), 1 (serial)
// and far more threads than the hardware has must all produce the same
// pull and push results.
TEST(PsConcurrencyTest, PoolSizeEdgeConfigsAgree) {
  DynSgdRule rule;
  std::vector<double> reference;
  for (const int parallelism : {0, 1, 256}) {
    PsOptions opts = StressOptions();
    opts.partitions_per_server = 4;
    opts.pull_parallelism = parallelism;
    opts.push_parallelism = parallelism;
    ParameterServer ps(96, 2, rule, opts);
    ps.Push(0, 0, SparseVector({0, 50, 95}, {1.0, 2.0, 3.0}));
    ps.Push(1, 0, SparseVector({1, 60}, {4.0, 5.0}));
    const std::vector<double> pulled = ps.PullFull(0);
    ASSERT_EQ(pulled.size(), 96u);
    if (reference.empty()) {
      reference = pulled;
    } else {
      for (size_t i = 0; i < pulled.size(); ++i) {
        EXPECT_DOUBLE_EQ(pulled[i], reference[i])
            << "parallelism " << parallelism << " index " << i;
      }
    }
  }
}

// Concurrent pulls and parallel push applies share ONE pool; neither
// may starve or race the other. TSan verifies the locking; the final
// clock/state checks verify nothing was dropped.
TEST(PsConcurrencyTest, SharedPoolServesPullsAndPushApplies) {
  DynSgdRule rule;
  const int kWorkers = 4;
  const int kClocks = 40;
  PsOptions opts = StressOptions();
  opts.partitions_per_server = 4;
  opts.pull_parallelism = 3;
  opts.push_parallelism = 3;
  ParameterServer ps(128, kWorkers, rule, opts);

  std::vector<std::thread> threads;
  for (int m = 0; m < kWorkers; ++m) {
    threads.emplace_back([&, m] {
      Rng rng(200 + m);
      for (int c = 0; c < kClocks; ++c) {
        SparseVector u;
        for (int64_t j = 0; j < ps.dim(); ++j) {
          if (rng.NextBernoulli(0.1)) u.PushBack(j, 0.5);
        }
        ps.Push(m, c, u);  // parallel piece apply on the shared pool
        if (c % 3 == 0) {
          ASSERT_EQ(ps.PullFull(m).size(), 128u);  // parallel assembly
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ps.cmin(), kClocks);
  EXPECT_EQ(ps.cmax(), kClocks);
}

// Regression (the AssemblePull silent-drop bug): when the pool refuses
// work — here, after an explicit shutdown — parallel pulls and push
// applies must degrade to inline execution, not drop partitions. Before
// the fix a refused Submit left assembled partitions zeroed and the
// latch hanging.
TEST(PsConcurrencyTest, PoolShutdownDegradesToInlineExecution) {
  DynSgdRule rule;
  PsOptions opts = StressOptions();
  opts.partitions_per_server = 4;
  opts.pull_parallelism = 3;
  opts.push_parallelism = 3;
  ParameterServer ps(64, 1, rule, opts);
  ps.Push(0, 0, SparseVector({0, 33, 63}, {1.0, 2.0, 3.0}));

  ps.ShutdownApplyPoolForTest();

  // Pull after shutdown: every partition must still materialize.
  const std::vector<double> pulled = ps.PullFull(0);
  ASSERT_EQ(pulled.size(), 64u);
  EXPECT_DOUBLE_EQ(pulled[0], 1.0);
  EXPECT_DOUBLE_EQ(pulled[33], 2.0);
  EXPECT_DOUBLE_EQ(pulled[63], 3.0);

  // Push after shutdown: pieces apply inline, the clock still advances.
  ps.Push(0, 1, SparseVector({5, 40}, {1.0, 1.0}));
  EXPECT_EQ(ps.cmin(), 2);
  const std::vector<double> after = ps.PullFull(0);
  EXPECT_DOUBLE_EQ(after[5], 1.0);
  EXPECT_DOUBLE_EQ(after[40], 1.0);
}

}  // namespace
}  // namespace hetps
