// Multithreaded regression and stress tests for the ParameterServer
// lock-ordering discipline (parameter_server.h). Run these under
// ThreadSanitizer (scripts/run_sanitizers.sh tsan) — several of them
// exist precisely because TSan or a deadlock caught a real bug.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "core/dyn_sgd.h"
#include "ps/parameter_server.h"
#include "util/rng.h"

namespace hetps {
namespace {

PsOptions StressOptions() {
  PsOptions opts;
  opts.num_servers = 2;
  opts.partitions_per_server = 2;
  opts.sync = SyncPolicy::Asp();  // no admission blocking in stress loops
  return opts;
}

// Regression: SaveCheckpoint took clock_mu_ then shard_mu_[p] while
// PullPiece took shard_mu_[p] then clock_mu_ (to read cmax for the
// OnPull stamp) — a classic ABBA deadlock under concurrent pulls and
// checkpoints. Fixed by snapshotting cmax *before* the shard lock.
// Before the fix this test wedged within a few hundred iterations.
TEST(PsConcurrencyTest, PullsRaceCheckpointsWithoutDeadlock) {
  DynSgdRule rule;
  ParameterServer ps(64, 4, rule, StressOptions());
  // Seed some state so pulls and checkpoints do real work.
  for (int m = 0; m < 4; ++m) {
    ps.Push(m, 0, SparseVector({static_cast<int64_t>(m), 40}, {1.0, 0.5}));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> checkpoints{0};

  std::thread checkpointer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::ostringstream sink;
      ASSERT_TRUE(ps.SaveCheckpoint(sink).ok());
      checkpoints.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> pullers;
  for (int m = 0; m < 3; ++m) {
    pullers.emplace_back([&, m] {
      for (int i = 0; i < 400; ++i) {
        // PullPiece is the shard->clock path that deadlocked.
        for (int p = 0; p < ps.num_partitions(); ++p) {
          ps.PullPiece(p, m);
        }
        ps.PullFull(m);
      }
    });
  }
  for (auto& t : pullers) t.join();
  stop.store(true, std::memory_order_relaxed);
  checkpointer.join();
  EXPECT_GT(checkpoints.load(), 0);
}

// Full-mix stress: concurrent pushes, full pulls, snapshots and
// checkpoints. Checks invariants loosely (exact values depend on
// interleaving) but TSan verifies the locking.
TEST(PsConcurrencyTest, ConcurrentPushPullSnapshotCheckpoint) {
  SspRule rule;
  const int kWorkers = 4;
  const int kClocks = 60;
  ParameterServer ps(128, kWorkers, rule, StressOptions());

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int m = 0; m < kWorkers; ++m) {
    threads.emplace_back([&, m] {
      Rng rng(100 + m);
      for (int c = 0; c < kClocks; ++c) {
        SparseVector u;
        for (int64_t j = 0; j < ps.dim(); ++j) {
          if (rng.NextBernoulli(0.1)) u.PushBack(j, 1.0);
        }
        ps.Push(m, c, u);
        if (c % 5 == 0) ps.PullFull(m);
        if (c % 7 == 0) ps.PullRange(m, 10, 90);
      }
    });
  }
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = ps.Snapshot();
      ASSERT_EQ(snap.size(), 128u);
      std::ostringstream sink;
      ASSERT_TRUE(ps.SaveCheckpoint(sink).ok());
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  observer.join();

  // Every worker finished every clock.
  EXPECT_EQ(ps.cmin(), kClocks);
  EXPECT_EQ(ps.cmax(), kClocks);
}

// LoadCheckpoint commits shadow state under the full lock hierarchy
// while readers keep pulling: restores must never tear a pull (a pull
// sees either the old or the new state per partition, and never
// crashes or races).
TEST(PsConcurrencyTest, RestoreRacesPullsSafely) {
  DynSgdRule rule;
  ParameterServer ps(32, 2, rule, StressOptions());
  ps.Push(0, 0, SparseVector({1}, {1.0}));
  ps.Push(1, 0, SparseVector({20}, {2.0}));
  std::stringstream buffer;
  ASSERT_TRUE(ps.SaveCheckpoint(buffer).ok());
  const std::string ckpt = buffer.str();
  // Every restore returns to exactly this state, so concurrent pulls
  // must always observe it (the rule's materialization is
  // deterministic).
  const std::vector<double> expected = ps.Snapshot();

  std::atomic<bool> stop{false};
  std::thread restorer([&] {
    for (int i = 0; i < 50; ++i) {
      std::stringstream is(ckpt);
      ASSERT_TRUE(ps.LoadCheckpoint(is).ok());
    }
    stop.store(true, std::memory_order_relaxed);
  });
  std::vector<std::thread> pullers;
  for (int m = 0; m < 2; ++m) {
    pullers.emplace_back([&, m] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto w = ps.PullFull(m);
        ASSERT_EQ(w.size(), 32u);
        EXPECT_DOUBLE_EQ(w[1], expected[1]);
        EXPECT_DOUBLE_EQ(w[20], expected[20]);
      }
    });
  }
  restorer.join();
  for (auto& t : pullers) t.join();
}

// SSP waiters blocked in WaitUntilCanAdvance must wake when a restore
// rewinds/advances the clock table (the commit notifies clock_cv_).
TEST(PsConcurrencyTest, RestoreWakesSspWaiters) {
  SspRule rule;
  PsOptions opts = StressOptions();
  opts.sync = SyncPolicy::Ssp(1);
  ParameterServer slow(8, 2, rule, opts);

  // Build a checkpoint where both workers finished clock 1.
  ParameterServer fast(8, 2, rule, opts);
  for (int c = 0; c < 2; ++c) {
    fast.Push(0, c, SparseVector({0}, {1.0}));
    fast.Push(1, c, SparseVector({1}, {1.0}));
  }
  std::stringstream buffer;
  ASSERT_TRUE(fast.SaveCheckpoint(buffer).ok());

  // Worker 0 in `slow` is ahead and blocks on clock 3 admission.
  slow.Push(0, 0, SparseVector({0}, {1.0}));
  slow.Push(0, 1, SparseVector({0}, {1.0}));
  std::thread waiter([&] { slow.WaitUntilCanAdvance(0, 3); });
  // The restore brings cmin to 2, admitting clock 3 under SSP(1).
  ASSERT_TRUE(slow.LoadCheckpoint(buffer).ok());
  waiter.join();
  EXPECT_EQ(slow.cmin(), 2);
}

// Eviction races pushers: while every worker hammers pushes, an
// eviction/readmission thread repeatedly removes and restores one
// worker. Sampled invariant: cmin <= cmax at all times, and the run
// terminates (no waiter left stranded, no deadlock between the clock
// lock and the shard locks). TSan verifies the locking.
TEST(PsConcurrencyTest, EvictReadmitRacesPushers) {
  SspRule rule;
  const int kWorkers = 4;
  const int kClocks = 80;
  ParameterServer ps(64, kWorkers, rule, StressOptions());

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int m = 0; m < kWorkers; ++m) {
    threads.emplace_back([&, m] {
      for (int c = 0; c < kClocks; ++c) {
        SparseVector u;
        u.PushBack(m, 1.0);
        u.PushBack(32 + m, 1.0);
        // Worker 3's pushes may be dropped while it is evicted — that is
        // the point: drops must be silent, counted, and non-corrupting.
        ps.Push(m, c, u);
        if (c % 9 == 0) ps.PullFull(m);
      }
    });
  }
  std::thread churner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (ps.EvictWorker(3)) {
        // Rejoin at the current frontier, as a recovered worker would.
        ps.ReadmitWorker(3, ps.cmin());
      }
      ASSERT_LE(ps.cmin(), ps.cmax());
      ASSERT_GE(ps.num_live_workers(), kWorkers - 1);
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  churner.join();

  // Readmit one last time so the final-state checks are deterministic.
  ps.ReadmitWorker(3, ps.cmin());
  EXPECT_LE(ps.cmin(), ps.cmax());
  // Workers 0-2 were never evicted: all their clocks landed.
  EXPECT_EQ(ps.cmax(), kClocks);
}

}  // namespace
}  // namespace hetps
