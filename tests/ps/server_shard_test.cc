#include "ps/server_shard.h"

#include <gtest/gtest.h>

#include "core/dyn_sgd.h"

namespace hetps {
namespace {

TEST(ServerShardTest, PushAppliesRule) {
  ConRule proto(0.5);
  ServerShard shard(0, 4, proto, 2);
  shard.Push(0, 0, SparseVector({1}, {2.0}));
  EXPECT_DOUBLE_EQ(shard.param().At(1), 1.0);
  EXPECT_EQ(shard.push_count(), 1);
}

TEST(ServerShardTest, PullReturnsDenseBlock) {
  SspRule proto;
  ServerShard shard(3, 3, proto, 1);
  shard.Push(0, 0, SparseVector({0, 2}, {1.0, 3.0}));
  const auto block = shard.Pull(0, /*cmax=*/1);
  ASSERT_EQ(block.size(), 3u);
  EXPECT_DOUBLE_EQ(block[0], 1.0);
  EXPECT_DOUBLE_EQ(block[2], 3.0);
  EXPECT_EQ(shard.shard_id(), 3);
}

TEST(ServerShardTest, PeekDoesNotStampPullState) {
  DynSgdRule::Options opts;
  opts.version_mode = DynSgdRule::VersionMode::kAlgorithm2;
  DynSgdRule proto(opts);
  ServerShard shard(0, 2, proto, 2);
  shard.Push(0, 0, SparseVector({0}, {1.0}));
  const auto* rule = static_cast<const DynSgdRule*>(&shard.rule());
  const int64_t v_before = rule->WorkerVersion(1);
  shard.Peek();
  EXPECT_EQ(rule->WorkerVersion(1), v_before);
  shard.Pull(1, 1);
  EXPECT_NE(rule->WorkerVersion(1), v_before);
}

TEST(ServerShardTest, VersionedPullWithDeferredDyn) {
  DynSgdRule::Options opts;
  opts.mode = DynSgdRule::ApplyMode::kDeferred;
  DynSgdRule proto(opts);
  ServerShard shard(0, 1, proto, 2);
  shard.Push(0, 0, SparseVector({0}, {4.0}));  // version 0
  shard.Push(0, 1, SparseVector({0}, {6.0}));  // version 1
  EXPECT_EQ(shard.CurrentVersion(), 2);
  EXPECT_DOUBLE_EQ(shard.PullAtVersion(1, 2, 1)[0], 4.0);
  EXPECT_DOUBLE_EQ(shard.PullAtVersion(1, 2, 2)[0], 10.0);
}

TEST(ServerShardTest, MemoryAccounting) {
  DynSgdRule proto;
  ServerShard shard(0, 100, proto, 2);
  EXPECT_EQ(shard.ParamMemoryBytes(), 100 * sizeof(double));
  const size_t aux0 = shard.AuxMemoryBytes();
  shard.Push(0, 0, SparseVector({0, 1, 2}, {1.0, 1.0, 1.0}));
  EXPECT_GT(shard.AuxMemoryBytes(), aux0);
}

TEST(ServerShardTest, RuleCloneIsPerShard) {
  DynSgdRule proto;
  ServerShard a(0, 2, proto, 2);
  ServerShard b(1, 2, proto, 2);
  a.Push(0, 0, SparseVector({0}, {1.0}));
  EXPECT_DOUBLE_EQ(b.param().At(0), 0.0);
  EXPECT_EQ(b.push_count(), 0);
}

}  // namespace
}  // namespace hetps
