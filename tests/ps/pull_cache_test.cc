// Version-aware pull path: partition content tags, delta encoding,
// client cache coherence, checkpoint-restore invalidation, and tag
// monotonicity under concurrent traffic (run under TSan in CI — the
// shard-parallel assembly pool is exercised here).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/consolidation.h"
#include "ps/checkpoint.h"
#include "ps/parameter_server.h"
#include "ps/worker_client.h"
#include "util/rng.h"

namespace hetps {
namespace {

PsOptions MultiPartOptions(SyncPolicy sync, int servers = 2,
                           int parts_per_server = 2) {
  PsOptions opts;
  opts.num_servers = servers;
  opts.partitions_per_server = parts_per_server;
  opts.scheme = PartitionScheme::kRange;
  opts.sync = sync;
  return opts;
}

std::vector<int64_t> TagsOf(const DeltaPullResult& r) {
  std::vector<int64_t> tags;
  for (const PartitionPull& p : r.partitions) tags.push_back(p.tag);
  return tags;
}

TEST(PullDeltaTest, ColdPullShipsEverythingWarmPullShipsNothing) {
  SspRule rule;
  ParameterServer ps(64, 1, rule, MultiPartOptions(SyncPolicy::Asp()));
  ps.Push(0, 0, SparseVector({1, 20, 40, 60}, {1.0, 2.0, 3.0, 4.0}));

  const std::vector<int64_t> cold(
      static_cast<size_t>(ps.num_partitions()), kNoCachedTag);
  const DeltaPullResult first = ps.PullDelta(0, cold);
  ASSERT_EQ(static_cast<int>(first.partitions.size()),
            ps.num_partitions());
  EXPECT_GT(first.bytes_shipped, 0);
  for (const PartitionPull& p : first.partitions) {
    EXPECT_NE(p.encoding, PartitionPull::Encoding::kUnchanged);
    EXPECT_NE(p.tag, kNoCachedTag);
  }

  // Nothing changed: a warm pull ships zero content bytes.
  const DeltaPullResult second = ps.PullDelta(0, TagsOf(first));
  EXPECT_EQ(second.bytes_shipped, 0);
  for (const PartitionPull& p : second.partitions) {
    EXPECT_EQ(p.encoding, PartitionPull::Encoding::kUnchanged);
  }
}

TEST(PullDeltaTest, OnlyDirtyPartitionsShip) {
  SspRule rule;
  ParameterServer ps(64, 1, rule, MultiPartOptions(SyncPolicy::Asp()));
  const std::vector<int64_t> cold(
      static_cast<size_t>(ps.num_partitions()), kNoCachedTag);
  // Seed every partition with content so the cache-less baseline
  // (bytes_full) has something real to ship per partition.
  ps.Push(0, 0, SparseVector({1, 20, 40, 60}, {1.0, 2.0, 3.0, 4.0}));
  const DeltaPullResult warmup = ps.PullDelta(0, cold);

  // Range partitioning: key 2 lands in partition 0 only.
  ps.Push(0, 1, SparseVector({2}, {5.0}));
  const DeltaPullResult after = ps.PullDelta(0, TagsOf(warmup));
  int changed = 0;
  for (const PartitionPull& p : after.partitions) {
    if (p.encoding != PartitionPull::Encoding::kUnchanged) ++changed;
  }
  EXPECT_EQ(changed, 1);
  EXPECT_NE(after.partitions[0].encoding,
            PartitionPull::Encoding::kUnchanged);
  EXPECT_GT(after.bytes_shipped, 0);
  EXPECT_LT(after.bytes_shipped, after.bytes_full);
}

TEST(PullDeltaTest, EmptyPiecePushDoesNotDirtyPartition) {
  // The per-piece push entry point (used by PsService and the event
  // simulator) must agree with the facade: for no-op-on-empty rules an
  // empty piece — common when the §5.3 update filter empties a
  // partition's slice — must not bump the partition's data_version, or
  // every clean partition looks dirty to the pull cache. The clock must
  // still advance when the empty piece was the update's last.
  SspRule rule;
  ParameterServer ps(64, 1, rule, MultiPartOptions(SyncPolicy::Asp()));
  ps.Push(0, 0, SparseVector({1, 20, 40, 60}, {1.0, 2.0, 3.0, 4.0}));
  const int64_t tag_before = ps.PartitionTag(0);
  const int cmin_before = ps.cmin();
  ps.PushPiece(0, 0, 1, SparseVector(), /*last_piece=*/true);
  EXPECT_EQ(ps.PartitionTag(0), tag_before);
  EXPECT_EQ(ps.cmin(), cmin_before + 1);  // clock still advanced
  // A non-empty piece does dirty it.
  ps.PushPiece(0, 0, 2, SparseVector({3}, {1.0}), /*last_piece=*/true);
  EXPECT_NE(ps.PartitionTag(0), tag_before);
}

TEST(PullDeltaTest, SmallUpdateShipsAsSparseDelta) {
  // A 3-key update against a 512-key partition must travel as a delta
  // (or sparse piece), far below the dense 512 * 8 bytes.
  SspRule rule;
  ParameterServer ps(1024, 1, rule,
                     MultiPartOptions(SyncPolicy::Asp(), 2, 1));
  const std::vector<int64_t> cold(
      static_cast<size_t>(ps.num_partitions()), kNoCachedTag);
  // Make the dense blocks non-trivial so dense wins the first ship.
  std::vector<int64_t> idx;
  std::vector<double> val;
  for (int64_t i = 0; i < 1024; i += 2) {
    idx.push_back(i);
    val.push_back(0.5);
  }
  ps.Push(0, 0, SparseVector(idx, val));
  const DeltaPullResult warmup = ps.PullDelta(0, cold);

  ps.Push(0, 1, SparseVector({3, 9, 11}, {1.0, 1.0, 1.0}));
  const DeltaPullResult after = ps.PullDelta(0, TagsOf(warmup));
  EXPECT_EQ(after.partitions[0].encoding,
            PartitionPull::Encoding::kSparseDelta);
  EXPECT_EQ(after.partitions[0].sparse.nnz(), 3u);
  EXPECT_LT(after.bytes_shipped, 512 * 8);
}

TEST(PullCacheTest, WorkerClientReplicaMatchesFullPullUnderRandomTraffic) {
  // Bit-identical coherence: after any sequence of pushes, the cached
  // client's replica equals a cache-less full pull. Random sparse
  // updates, multiple partitions, many rounds.
  SspRule rule;
  ParameterServer ps(96, 2, rule, MultiPartOptions(SyncPolicy::Asp()));
  WorkerClient cached(0, &ps, /*delta_pull=*/true);
  WorkerClient full(1, &ps, /*delta_pull=*/false);
  Rng rng(321);
  std::vector<double> a, b;
  for (int round = 0; round < 50; ++round) {
    const int pushes = 1 + static_cast<int>(rng.NextUint64(3));
    for (int k = 0; k < pushes; ++k) {
      std::vector<int64_t> idx;
      std::vector<double> val;
      int64_t key = static_cast<int64_t>(rng.NextUint64(8));
      while (key < 96) {
        idx.push_back(key);
        val.push_back(rng.NextDouble() - 0.5);
        key += 1 + static_cast<int64_t>(rng.NextUint64(24));
      }
      ps.Push(0, round * 8 + k, SparseVector(idx, val));
    }
    cached.PullBlocking(0, &a);
    full.PullBlocking(0, &b);
    ASSERT_EQ(a, b) << "round " << round;
  }
  // The cache actually paid off: shipped less than the full-pull cost.
  EXPECT_LT(cached.pulled_bytes(), cached.pulled_bytes_full());
  EXPECT_EQ(full.pulled_bytes(), full.pulled_bytes_full());
}

TEST(PullCacheTest, TrainerMutatingItsReplicaDoesNotPoisonTheCache) {
  // The trainer scribbles on the replica it was handed (local SGD).
  // The client's pristine cache must be unaffected: the next pull still
  // reconstructs the true server state.
  SspRule rule;
  ParameterServer ps(32, 1, rule, MultiPartOptions(SyncPolicy::Asp()));
  WorkerClient client(0, &ps);
  ps.Push(0, 0, SparseVector({0, 16}, {1.0, 2.0}));
  std::vector<double> replica;
  client.PullBlocking(0, &replica);
  for (auto& v : replica) v = 99.0;  // trainer-side mutation
  ps.Push(0, 1, SparseVector({1}, {3.0}));
  client.PullBlocking(0, &replica);
  EXPECT_EQ(replica, ps.Snapshot());
}

TEST(PullCacheTest, CheckpointRestoreInvalidatesClientTags) {
  // Restoring a checkpoint rewinds shard state; the pull epoch bump must
  // invalidate every cached tag, or a client whose tag happens to match
  // the restored data_version would keep stale content forever.
  SspRule rule;
  ParameterServer ps(32, 1, rule, MultiPartOptions(SyncPolicy::Asp()));
  WorkerClient client(0, &ps);
  ps.Push(0, 0, SparseVector({4}, {1.0}));
  std::vector<double> replica;
  client.PullBlocking(0, &replica);  // warm cache at version 1

  const std::string path =
      testing::TempDir() + "/hetps_pull_cache_ckpt.txt";
  ASSERT_TRUE(SaveCheckpointToFile(ps, path).ok());

  // Diverge, then rewind. The restored shard has the same push count as
  // the checkpoint (data_version collides with a pre-restore tag).
  ps.Push(0, 1, SparseVector({4, 5}, {10.0, 20.0}));
  client.PullBlocking(0, &replica);
  ASSERT_DOUBLE_EQ(replica[4], 11.0);
  ASSERT_TRUE(RestoreCheckpointFromFile(&ps, path).ok());
  std::remove(path.c_str());

  client.PullBlocking(0, &replica);
  EXPECT_EQ(replica, ps.Snapshot());
  EXPECT_DOUBLE_EQ(replica[4], 1.0);
  EXPECT_DOUBLE_EQ(replica[5], 0.0);
}

TEST(PullCacheTest, ParallelAndSerialAssemblyAgree) {
  // pull_parallelism 1 (serial, calling thread) and 0 (auto, shard pool)
  // must produce identical results for identical traffic.
  SspRule rule;
  PsOptions serial = MultiPartOptions(SyncPolicy::Asp(), 2, 4);
  serial.pull_parallelism = 1;
  PsOptions parallel = MultiPartOptions(SyncPolicy::Asp(), 2, 4);
  parallel.pull_parallelism = 0;
  ParameterServer ps_a(128, 1, rule, serial);
  ParameterServer ps_b(128, 1, rule, parallel);
  Rng rng(77);
  for (int c = 0; c < 10; ++c) {
    std::vector<int64_t> idx;
    std::vector<double> val;
    for (int64_t key = static_cast<int64_t>(rng.NextUint64(4)); key < 128;
         key += 1 + static_cast<int64_t>(rng.NextUint64(16))) {
      idx.push_back(key);
      val.push_back(rng.NextDouble());
    }
    const SparseVector update(idx, val);
    ps_a.Push(0, c, update);
    ps_b.Push(0, c, update);
  }
  const std::vector<int64_t> cold(
      static_cast<size_t>(ps_a.num_partitions()), kNoCachedTag);
  const DeltaPullResult a = ps_a.PullDelta(0, cold);
  const DeltaPullResult b = ps_b.PullDelta(0, cold);
  ASSERT_EQ(a.partitions.size(), b.partitions.size());
  EXPECT_EQ(a.bytes_shipped, b.bytes_shipped);
  for (size_t p = 0; p < a.partitions.size(); ++p) {
    EXPECT_EQ(a.partitions[p].encoding, b.partitions[p].encoding);
    EXPECT_EQ(a.partitions[p].dense, b.partitions[p].dense);
    EXPECT_TRUE(a.partitions[p].sparse == b.partitions[p].sparse);
  }
  EXPECT_EQ(ps_a.Snapshot(), ps_b.Snapshot());
}

TEST(PullCacheTest, ObservedPartitionVersionsNeverRegress) {
  // Monotonicity under concurrent pushes (ASP): across successive pulls
  // a worker must never observe a partition *older* than one it already
  // pulled. Live tags encode the shard's push count, so within one epoch
  // TagValue must be non-decreasing per partition. This is also the TSan
  // workout for the shard-parallel assembly pool.
  SspRule rule;
  ParameterServer ps(64, 3, rule, MultiPartOptions(SyncPolicy::Asp()));
  std::atomic<bool> stop{false};
  std::vector<std::thread> pushers;
  for (int w = 1; w <= 2; ++w) {
    pushers.emplace_back([&ps, &stop, w] {
      Rng rng(static_cast<uint64_t>(w) * 17);
      int clock = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<int64_t> idx;
        std::vector<double> val;
        for (int64_t key = static_cast<int64_t>(rng.NextUint64(8));
             key < 64; key += 8 + static_cast<int64_t>(rng.NextUint64(8))) {
          idx.push_back(key);
          val.push_back(1e-3);
        }
        ps.Push(w, clock++, SparseVector(idx, val));
      }
    });
  }
  WorkerClient client(0, &ps);
  std::vector<double> replica;
  std::vector<int64_t> prev(static_cast<size_t>(ps.num_partitions()),
                            -1);
  for (int pull = 0; pull < 200; ++pull) {
    client.PullBlocking(0, &replica);
    const std::vector<int64_t>& tags = client.cached_tags();
    ASSERT_EQ(static_cast<int>(tags.size()), ps.num_partitions());
    for (size_t p = 0; p < tags.size(); ++p) {
      ASSERT_FALSE(ParameterServer::TagIsVersioned(tags[p]));
      const int64_t v = ParameterServer::TagValue(tags[p]);
      EXPECT_GE(v, prev[p]) << "partition " << p << " regressed";
      prev[p] = v;
    }
  }
  stop.store(true);
  for (auto& t : pushers) t.join();
}

TEST(PullCacheTest, SspWorkerNeverObservesStateOlderThanAlreadyPulled) {
  // Same monotonicity property under SSP with real admission gating:
  // worker 0 pulls between clocks while worker 1 races ahead within the
  // staleness window.
  SspRule rule;
  ParameterServer ps(64, 2, rule,
                     MultiPartOptions(SyncPolicy::Ssp(3)));
  std::thread peer([&ps] {
    for (int c = 0; c < 40; ++c) {
      ps.Push(1, c, SparseVector({static_cast<int64_t>(c % 64)}, {1.0}));
      ps.WaitUntilCanAdvance(1, c + 1);
    }
  });
  WorkerClient client(0, &ps);
  std::vector<double> replica;
  std::vector<int64_t> prev(static_cast<size_t>(ps.num_partitions()),
                            -1);
  for (int c = 0; c < 40; ++c) {
    ps.Push(0, c, SparseVector({1}, {1e-3}));
    ps.WaitUntilCanAdvance(0, c + 1);
    client.PullBlocking(c + 1, &replica);
    const std::vector<int64_t>& tags = client.cached_tags();
    for (size_t p = 0; p < tags.size(); ++p) {
      const int64_t v = ParameterServer::TagValue(tags[p]);
      EXPECT_GE(v, prev[p]);
      prev[p] = v;
    }
  }
  peer.join();
}

}  // namespace
}  // namespace hetps
