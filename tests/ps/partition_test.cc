#include "ps/partition.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace hetps {
namespace {

class PartitionerSchemeTest
    : public ::testing::TestWithParam<PartitionScheme> {};

TEST_P(PartitionerSchemeTest, EveryKeyMapsToExactlyOneSlot) {
  const Partitioner part(GetParam(), /*dim=*/103, /*num_servers=*/4,
                         /*num_partitions=*/8);
  std::set<std::pair<int, int64_t>> seen;
  for (int64_t key = 0; key < 103; ++key) {
    const int p = part.PartitionOf(key);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, part.num_partitions());
    const int64_t local = part.LocalIndex(key);
    ASSERT_GE(local, 0);
    ASSERT_LT(local, part.PartitionDim(p));
    EXPECT_EQ(part.GlobalIndex(p, local), key);
    EXPECT_TRUE(seen.insert({p, local}).second)
        << "slot collision for key " << key;
  }
}

TEST_P(PartitionerSchemeTest, PartitionDimsSumToDim) {
  const Partitioner part(GetParam(), 103, 4, 8);
  int64_t total = 0;
  for (int p = 0; p < part.num_partitions(); ++p) {
    total += part.PartitionDim(p);
  }
  EXPECT_EQ(total, 103);
}

TEST_P(PartitionerSchemeTest, SplitByPartitionPreservesContent) {
  const Partitioner part(GetParam(), 103, 4, 8);
  SparseVector v({0, 7, 50, 99, 102}, {1.0, 2.0, 3.0, 4.0, 5.0});
  const auto pieces = part.SplitByPartition(v);
  ASSERT_EQ(pieces.size(), 8u);
  size_t total_nnz = 0;
  for (int p = 0; p < 8; ++p) {
    for (size_t i = 0; i < pieces[static_cast<size_t>(p)].nnz(); ++i) {
      const int64_t g = part.GlobalIndex(
          p, pieces[static_cast<size_t>(p)].index(i));
      EXPECT_DOUBLE_EQ(pieces[static_cast<size_t>(p)].value(i),
                       v.ValueAt(g));
      ++total_nnz;
    }
  }
  EXPECT_EQ(total_nnz, v.nnz());
}

TEST_P(PartitionerSchemeTest, ServerAssignmentsInRange) {
  const Partitioner part(GetParam(), 103, 4, 8);
  for (int p = 0; p < part.num_partitions(); ++p) {
    EXPECT_GE(part.ServerOf(p), 0);
    EXPECT_LT(part.ServerOf(p), 4);
  }
  const auto loads = part.ServerLoads();
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), int64_t{0}), 103);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PartitionerSchemeTest,
                         ::testing::Values(PartitionScheme::kRange,
                                           PartitionScheme::kHash,
                                           PartitionScheme::kRangeHash));

TEST(PartitionerTest, RangeKeepsContiguousKeysTogether) {
  const Partitioner part(PartitionScheme::kRange, 100, 2, 4);
  // Keys 0..24 -> partition 0, etc.
  EXPECT_EQ(part.PartitionOf(0), 0);
  EXPECT_EQ(part.PartitionOf(24), 0);
  EXPECT_EQ(part.PartitionOf(25), 1);
  EXPECT_EQ(part.PartitionOf(99), 3);
  EXPECT_EQ(part.PartitionsTouched(0, 25), 1);
  EXPECT_EQ(part.PartitionsTouched(0, 26), 2);
}

TEST(PartitionerTest, HashSpreadsRangeQueriesEverywhere) {
  const Partitioner part(PartitionScheme::kHash, 100, 2, 4);
  EXPECT_EQ(part.PartitionsTouched(0, 25), 4);
  EXPECT_EQ(part.PartitionsTouched(0, 2), 2);
  EXPECT_EQ(part.PartitionsTouched(10, 10), 0);
}

TEST(PartitionerTest, RangeHashKeepsRangeLocality) {
  const Partitioner part(PartitionScheme::kRangeHash, 100, 2, 4);
  // Hybrid partitions by range, so a quarter-range query touches one
  // partition (§6: "range partition facilitates range queries").
  EXPECT_EQ(part.PartitionsTouched(0, 25), 1);
}

TEST(PartitionerTest, RangeHashBalancesPopularPrefix) {
  // With skewed access concentrated on low keys, plain range partition
  // puts the whole hot range on server 0; range-hash spreads ranges.
  const Partitioner range(PartitionScheme::kRange, 1000, 4, 16);
  const Partitioner hybrid(PartitionScheme::kRangeHash, 1000, 4, 16);
  std::set<int> range_servers;
  std::set<int> hybrid_servers;
  for (int64_t key = 0; key < 250; ++key) {  // hot prefix
    range_servers.insert(range.ServerOf(range.PartitionOf(key)));
    hybrid_servers.insert(hybrid.ServerOf(hybrid.PartitionOf(key)));
  }
  EXPECT_GE(hybrid_servers.size(), range_servers.size());
}

TEST(PartitionerTest, PartitionsForRangeCoversRangeExactly) {
  for (PartitionScheme scheme :
       {PartitionScheme::kRange, PartitionScheme::kHash,
        PartitionScheme::kRangeHash}) {
    const Partitioner part(scheme, 100, 2, 4);
    const auto parts = part.PartitionsForRange(10, 40);
    // Every key of the range maps to a listed partition.
    for (int64_t key = 10; key < 40; ++key) {
      EXPECT_NE(std::find(parts.begin(), parts.end(),
                          part.PartitionOf(key)),
                parts.end())
          << "scheme " << PartitionSchemeName(scheme) << " key " << key;
    }
    // Sorted, unique.
    for (size_t i = 1; i < parts.size(); ++i) {
      EXPECT_LT(parts[i - 1], parts[i]);
    }
  }
}

TEST(PartitionerTest, PartitionsForRangeEdgeCases) {
  const Partitioner part(PartitionScheme::kRange, 100, 2, 4);
  EXPECT_TRUE(part.PartitionsForRange(50, 50).empty());
  EXPECT_EQ(part.PartitionsForRange(0, 100).size(), 4u);
  const Partitioner hash(PartitionScheme::kHash, 100, 2, 4);
  EXPECT_EQ(hash.PartitionsForRange(0, 2).size(), 2u);
  EXPECT_EQ(hash.PartitionsForRange(0, 100).size(), 4u);
}

TEST(PartitionerTest, CreateClampsPartitionCount) {
  const Partitioner part =
      Partitioner::Create(PartitionScheme::kRange, /*dim=*/3,
                          /*num_servers=*/2, /*partitions_per_server=*/5);
  EXPECT_LE(part.num_partitions(), 3);
  EXPECT_GE(part.num_partitions(), 2);
}

TEST(PartitionerDeathTest, Validates) {
  EXPECT_DEATH(Partitioner(PartitionScheme::kRange, 0, 1, 1), "dim");
  EXPECT_DEATH(Partitioner(PartitionScheme::kRange, 10, 0, 1), "server");
  EXPECT_DEATH(Partitioner(PartitionScheme::kRange, 10, 4, 2),
               "partition");
  const Partitioner part(PartitionScheme::kRange, 10, 2, 2);
  EXPECT_DEATH(part.PartitionOf(10), "out of range");
  EXPECT_DEATH(part.PartitionOf(-1), "out of range");
}

TEST(PartitionSchemeNameTest, Names) {
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kRange), "range");
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kHash), "hash");
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kRangeHash),
               "range-hash");
}

}  // namespace
}  // namespace hetps
