// Integration tests of §6's version-based partition synchronization: the
// master's stable version, consistent multi-partition pulls, and the
// simulator path with partition_sync enabled.

#include <gtest/gtest.h>

#include "core/dyn_sgd.h"
#include "core/learning_rate.h"
#include "data/synthetic.h"
#include "ps/parameter_server.h"
#include "sim/event_sim.h"
#include "util/rng.h"

namespace hetps {
namespace {

DynSgdRule DeferredDyn() {
  DynSgdRule::Options opts;
  opts.mode = DynSgdRule::ApplyMode::kDeferred;
  return DynSgdRule(opts);
}

// Pushes clock `clock` of both workers to every partition of `ps`.
void PushCompleteClock(ParameterServer* ps, int clock, double value) {
  for (int worker = 0; worker < 2; ++worker) {
    SparseVector update;
    for (int64_t key = 0; key < ps->dim(); ++key) {
      update.PushBack(key, value);
    }
    ps->Push(worker, clock, update);
  }
}

TEST(PartitionSyncTest, StableVersionCountsCompletedVersionsOnly) {
  DynSgdRule rule = DeferredDyn();
  PsOptions opts;
  opts.num_servers = 2;
  opts.partitions_per_server = 2;
  opts.partition_sync = true;
  ParameterServer ps(16, 2, rule, opts);
  EXPECT_EQ(ps.StableVersion(), 0);
  PushCompleteClock(&ps, 0, 1.0);
  EXPECT_EQ(ps.StableVersion(), 1);
  // A lone clock-1 piece from one worker does not advance stability.
  ps.PushPiece(0, 0, 1, SparseVector({0}, {9.0}), false);
  EXPECT_EQ(ps.StableVersion(), 1);
}

TEST(PartitionSyncTest, SynchronizedPullIgnoresStragglingPieces) {
  DynSgdRule rule = DeferredDyn();
  PsOptions opts;
  opts.num_servers = 2;
  opts.partitions_per_server = 1;
  opts.partition_sync = true;
  ParameterServer ps(4, 2, rule, opts);
  PushCompleteClock(&ps, 0, 0.5);  // both workers -> each key sums to 1.0
  // A clock-1 piece reaches only the partition holding key 0.
  const int hot = ps.partitioner().PartitionOf(0);
  const auto v1 =
      ps.partitioner().SplitByPartition(SparseVector({0}, {100.0}));
  ps.PushPiece(hot, 0, 1, v1[static_cast<size_t>(hot)], false);

  // With sync the pull is the consistent clock-0 state: version 0 holds
  // the *mean* of the two workers' 0.5-updates.
  const auto synced = ps.PullFull(1);
  for (double v : synced) {
    EXPECT_DOUBLE_EQ(v, 0.5);
  }
}

TEST(PartitionSyncTest, UnsynchronizedPullMixesVersions) {
  DynSgdRule rule = DeferredDyn();
  PsOptions opts;
  opts.num_servers = 2;
  opts.partitions_per_server = 1;
  opts.partition_sync = false;  // best-effort, like existing systems
  ParameterServer ps(4, 2, rule, opts);
  PushCompleteClock(&ps, 0, 0.5);
  const int hot = ps.partitioner().PartitionOf(0);
  const auto v1 =
      ps.partitioner().SplitByPartition(SparseVector({0}, {100.0}));
  ps.PushPiece(hot, 0, 1, v1[static_cast<size_t>(hot)], false);
  const auto mixed = ps.PullFull(1);
  // Saw the in-flight clock-1 piece at full transient weight on top of
  // version 0's mean.
  EXPECT_DOUBLE_EQ(mixed[0], 100.5);
  EXPECT_DOUBLE_EQ(mixed[1], 0.5);
}

TEST(PartitionSyncTest, SimulatorRunsWithPartitionSync) {
  SyntheticConfig cfg;
  cfg.num_examples = 300;
  cfg.num_features = 200;
  cfg.avg_nnz = 8;
  Dataset d = GenerateSynthetic(cfg);
  Rng rng(8);
  d.Shuffle(&rng);
  LogisticLoss loss;
  DynSgdRule rule = DeferredDyn();
  FixedRate sched(0.5);
  SimOptions opts;
  opts.max_clocks = 15;
  opts.stop_on_convergence = false;
  opts.partition_sync = true;
  opts.partitions_per_server = 2;
  opts.eval_sample = 300;
  const SimResult r = RunSimulation(
      d, ClusterConfig::WithStragglers(4, 2, 2.0), rule, sched, loss,
      opts);
  EXPECT_LT(r.objective_per_clock.back(),
            0.8 * r.objective_per_clock.front());
}

TEST(PartitionSyncTest, SyncAndNoSyncBothConvergeComparably) {
  SyntheticConfig cfg;
  cfg.num_examples = 300;
  cfg.num_features = 200;
  cfg.avg_nnz = 8;
  Dataset d = GenerateSynthetic(cfg);
  Rng rng(8);
  d.Shuffle(&rng);
  LogisticLoss loss;
  DynSgdRule rule = DeferredDyn();
  FixedRate sched(0.5);
  SimOptions opts;
  opts.max_clocks = 15;
  opts.stop_on_convergence = false;
  opts.eval_sample = 300;
  opts.partitions_per_server = 2;
  opts.partition_sync = false;
  const SimResult off = RunSimulation(
      d, ClusterConfig::WithStragglers(4, 2, 2.0), rule, sched, loss,
      opts);
  opts.partition_sync = true;
  const SimResult on = RunSimulation(
      d, ClusterConfig::WithStragglers(4, 2, 2.0), rule, sched, loss,
      opts);
  EXPECT_LT(on.objective_per_clock.back(), 0.55);
  EXPECT_LT(off.objective_per_clock.back(), 0.55);
}

}  // namespace
}  // namespace hetps
