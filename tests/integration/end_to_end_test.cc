// End-to-end integration: real data generation -> sharding -> threaded
// multi-worker training against the partitioned PS -> model evaluation,
// plus simulator-vs-threaded cross-checks.

#include <gtest/gtest.h>

#include "core/consolidation.h"
#include "core/dyn_sgd.h"
#include "core/learning_rate.h"
#include "data/synthetic.h"
#include "engine/threaded_trainer.h"
#include "models/linear_model.h"
#include "sim/event_sim.h"
#include "util/rng.h"

namespace hetps {
namespace {

Dataset E2eData(uint64_t seed = 71) {
  SyntheticConfig cfg;
  cfg.num_examples = 600;
  cfg.num_features = 300;
  cfg.avg_nnz = 10;
  cfg.label_noise = 0.02;
  cfg.seed = seed;
  Dataset d = GenerateSynthetic(cfg);
  Rng rng(seed + 1);
  d.Shuffle(&rng);
  return d;
}

TEST(EndToEndTest, AllRulesReachGoodAccuracyThreaded) {
  const Dataset d = E2eData();
  LogisticLoss loss;
  for (const char* rule_name : {"ssp", "con", "dyn"}) {
    auto rule = MakeConsolidationRule(rule_name);
    const double sigma = std::string(rule_name) == "ssp" ? 0.02 : 0.5;
    FixedRate sched(sigma);
    ThreadedTrainerOptions opts;
    opts.num_workers = 4;
    opts.num_servers = 2;
    opts.max_clocks = 12;
    opts.sync = SyncPolicy::Ssp(2);
    opts.eval_sample = 600;
    const ThreadedTrainResult r = TrainThreaded(d, loss, sched, *rule, opts);
    EXPECT_LT(r.final_objective, 0.45)
        << rule_name << " objective " << r.final_objective;
    EXPECT_GT(d.Accuracy(loss, r.weights), 0.75) << rule_name;
  }
}

TEST(EndToEndTest, SimulatorAndThreadedRuntimeAgreeOnQuality) {
  // The two execution paths run the same algorithm; they will not match
  // bit-for-bit (different interleavings) but must land in the same
  // quality regime.
  const Dataset d = E2eData();
  LogisticLoss loss;
  DynSgdRule rule;
  FixedRate sched(0.5);

  ThreadedTrainerOptions topts;
  topts.num_workers = 4;
  topts.num_servers = 2;
  topts.max_clocks = 12;
  topts.eval_sample = 600;
  const ThreadedTrainResult threaded =
      TrainThreaded(d, loss, sched, rule, topts);

  SimOptions sopts;
  sopts.max_clocks = 12;
  sopts.stop_on_convergence = false;
  sopts.eval_sample = 600;
  const SimResult sim = RunSimulation(
      d, ClusterConfig::Homogeneous(4, 2), rule, sched, loss, sopts);

  EXPECT_LT(threaded.final_objective, 0.4);
  EXPECT_LT(sim.objective_per_clock.back(), 0.4);
  EXPECT_NEAR(threaded.final_objective, sim.objective_per_clock.back(),
              0.12);
}

TEST(EndToEndTest, SvmAndLogisticBothLearnViaPublicApi) {
  const Dataset d = E2eData();
  for (const char* loss_name : {"logistic", "hinge"}) {
    LinearModelConfig cfg;
    cfg.loss = loss_name;
    cfg.num_workers = 4;
    cfg.num_servers = 2;
    cfg.max_clocks = 12;
    cfg.learning_rate = 0.5;
    auto model = LinearModel::Train(d, cfg);
    ASSERT_TRUE(model.ok()) << loss_name;
    EXPECT_GT(model.value().Accuracy(d), 0.8) << loss_name;
  }
}

TEST(EndToEndTest, GeneralizationToFreshSample) {
  // Train on one sample of the generative process, evaluate on another.
  const Dataset train = E2eData(71);
  SyntheticConfig test_cfg;
  test_cfg.num_examples = 400;
  test_cfg.num_features = 300;
  test_cfg.avg_nnz = 10;
  test_cfg.label_noise = 0.02;
  test_cfg.seed = 71;  // same ground truth stream prefix
  // Note: GenerateSynthetic draws truth first, so same seed => same truth
  // and the examples after the first 600 differ only by RNG state. Use a
  // larger run and split manually instead.
  SyntheticConfig big = test_cfg;
  big.num_examples = 1000;
  Dataset all = GenerateSynthetic(big);
  Dataset train_split;
  Dataset test_split;
  for (size_t i = 0; i < all.size(); ++i) {
    Example copy;
    copy.features = all.example(i).features;
    copy.label = all.example(i).label;
    if (i < 600) {
      train_split.Add(std::move(copy));
    } else {
      test_split.Add(std::move(copy));
    }
  }
  LinearModelConfig cfg;
  cfg.num_workers = 4;
  cfg.max_clocks = 12;
  cfg.learning_rate = 0.5;
  auto model = LinearModel::Train(train_split, cfg);
  ASSERT_TRUE(model.ok());
  // Dimensions may differ; pad evaluation via the model's weight size.
  double correct = 0;
  for (size_t i = 0; i < test_split.size(); ++i) {
    const auto& ex = test_split.example(i);
    double margin = 0.0;
    for (size_t k = 0; k < ex.features.nnz(); ++k) {
      const auto idx = static_cast<size_t>(ex.features.index(k));
      if (idx < model.value().weights().size()) {
        margin += ex.features.value(k) * model.value().weights()[idx];
      }
    }
    if ((margin >= 0) == (ex.label > 0)) correct += 1;
  }
  EXPECT_GT(correct / static_cast<double>(test_split.size()), 0.75);
}

}  // namespace
}  // namespace hetps
