// Sweep the real threaded runtime across the full configuration matrix:
// {BSP, ASP, SSP} x {ssp, con, dyn} x {range, hash, range-hash} x
// {plain, partition-sync, filter, prefetch}. Every combination must train
// a usable model — this is the "production usable" surface a downstream
// user can configure.

#include <gtest/gtest.h>

#include <tuple>

#include "core/consolidation.h"
#include "core/dyn_sgd.h"
#include "core/learning_rate.h"
#include "data/synthetic.h"
#include "engine/threaded_trainer.h"
#include "util/rng.h"

namespace hetps {
namespace {

const Dataset& MatrixData() {
  static const Dataset* d = [] {
    SyntheticConfig cfg;
    cfg.num_examples = 400;
    cfg.num_features = 150;
    cfg.avg_nnz = 8;
    cfg.label_noise = 0.01;
    cfg.seed = 61;
    auto* out = new Dataset(GenerateSynthetic(cfg));
    Rng rng(62);
    out->Shuffle(&rng);
    return out;
  }();
  return *d;
}

using MatrixCase = std::tuple<Protocol, const char*, PartitionScheme>;

class RuntimeMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(RuntimeMatrixTest, TrainsUsableModel) {
  const auto& [protocol, rule_name, scheme] = GetParam();
  const Dataset& d = MatrixData();
  LogisticLoss loss;
  const double sigma = std::string(rule_name) == "ssp" ? 0.02 : 0.5;
  FixedRate sched(sigma);
  auto rule = MakeConsolidationRule(rule_name);

  ThreadedTrainerOptions opts;
  switch (protocol) {
    case Protocol::kBsp:
      opts.sync = SyncPolicy::Bsp();
      break;
    case Protocol::kAsp:
      opts.sync = SyncPolicy::Asp();
      break;
    case Protocol::kSsp:
      opts.sync = SyncPolicy::Ssp(2);
      break;
  }
  opts.num_workers = 3;
  opts.num_servers = 2;
  opts.scheme = scheme;
  opts.max_clocks = 10;
  opts.eval_sample = 400;
  const ThreadedTrainResult r = TrainThreaded(d, loss, sched, *rule, opts);
  EXPECT_LT(r.final_objective, 0.55)
      << ProtocolName(protocol) << "/" << rule_name << "/"
      << PartitionSchemeName(scheme);
  EXPECT_GT(d.Accuracy(loss, r.weights), 0.7);
}

INSTANTIATE_TEST_SUITE_P(
    FullMatrix, RuntimeMatrixTest,
    ::testing::Combine(
        ::testing::Values(Protocol::kBsp, Protocol::kAsp, Protocol::kSsp),
        ::testing::Values("ssp", "con", "dyn"),
        ::testing::Values(PartitionScheme::kRange, PartitionScheme::kHash,
                          PartitionScheme::kRangeHash)));

class RuntimeFeatureTest : public ::testing::TestWithParam<int> {};

TEST_P(RuntimeFeatureTest, OptionalFeaturesCompose) {
  const int feature = GetParam();
  const Dataset& d = MatrixData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule::Options dyn_opts;
  if (feature == 1) dyn_opts.mode = DynSgdRule::ApplyMode::kDeferred;
  DynSgdRule rule(dyn_opts);
  ThreadedTrainerOptions opts;
  opts.num_workers = 3;
  opts.num_servers = 2;
  opts.max_clocks = 10;
  opts.eval_sample = 400;
  switch (feature) {
    case 0:
      break;  // plain
    case 1:
      opts.partition_sync = true;
      break;
    case 2:
      opts.update_filter_epsilon = 1e-7;
      break;
    case 3:
      opts.prefetch = true;
      break;
    case 4:
      opts.partitions_per_server = 4;
      break;
  }
  const ThreadedTrainResult r = TrainThreaded(d, loss, sched, rule, opts);
  EXPECT_LT(r.final_objective, 0.55) << "feature " << feature;
}

INSTANTIATE_TEST_SUITE_P(Features, RuntimeFeatureTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace hetps
