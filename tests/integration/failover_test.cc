// End-to-end proof of the liveness repair on the RPC runtime: under
// SSP a crash-stopped worker pins cmin and stalls the whole cluster.
// With the heartbeat plane on, the server evicts the dead worker,
// repairs cmin, fails its data shard over to the survivors, and the run
// converges; with the plane off, the identical scenario times out at
// the admission gate. Detection runs on the request-tick virtual clock
// (PsLivenessOptions), so none of these tests sleeps wall-clock time
// waiting for a heartbeat to expire.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/dyn_sgd.h"
#include "core/learning_rate.h"
#include "data/synthetic.h"
#include "engine/distributed_trainer.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace hetps {
namespace {

Dataset FailoverData() {
  SyntheticConfig cfg;
  cfg.num_examples = 400;
  cfg.num_features = 150;
  cfg.avg_nnz = 8;
  cfg.seed = 51;
  Dataset d = GenerateSynthetic(cfg);
  Rng rng(52);
  d.Shuffle(&rng);
  return d;
}

DistributedTrainerOptions FailoverOptions() {
  DistributedTrainerOptions opts;
  opts.num_workers = 4;
  opts.num_servers = 2;
  opts.max_clocks = 10;
  opts.eval_sample = 400;
  opts.sync = SyncPolicy::Ssp(3);
  return opts;
}

TEST(FailoverTest, KilledWorkerIsEvictedAndTrainingCompletes) {
  const Dataset d = FailoverData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;

  // Baseline: the same run with nobody killed.
  auto baseline =
      TrainDistributed(d, loss, sched, rule, FailoverOptions());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  DistributedTrainerOptions opts = FailoverOptions();
  opts.fault_plan.fault_worker = 2;
  opts.fault_plan.kill_at_clock = 3;  // crash-stop before clock 3
  // 2.0 virtual seconds = 2000 request ticks: the survivors' admission
  // probes alone advance the clock past the timeout, so detection works
  // even once everyone is parked on the SSP gate.
  opts.heartbeat_timeout = 2.0;

  const int64_t evicted_before =
      GlobalMetrics().counter("ps.worker_evicted")->value();
  const int64_t reassigned_before =
      GlobalMetrics().counter("ps.shard_reassignments")->value();

  auto result = TrainDistributed(d, loss, sched, rule, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Exactly the victim was evicted and its shard failed over.
  ASSERT_EQ(result.value().evicted_workers.size(), 1u);
  EXPECT_EQ(result.value().evicted_workers[0], 2);
  EXPECT_GE(result.value().shard_reassignments, 1);
  EXPECT_GT(result.value().examples_failed_over, 0);
  EXPECT_EQ(GlobalMetrics().counter("ps.worker_evicted")->value(),
            evicted_before + 1);
  EXPECT_GT(GlobalMetrics().counter("ps.shard_reassignments")->value(),
            reassigned_before);

  // The survivors ran to completion (no deadlock) and landed in the
  // same quality regime as the no-fault run.
  EXPECT_EQ(result.value().next_clock, opts.max_clocks);
  EXPECT_LT(result.value().final_objective, 0.5);
  EXPECT_NEAR(result.value().final_objective,
              baseline.value().final_objective, 0.15);
}

TEST(FailoverTest, EvictionDisabledDeadlocksAtTheAdmissionGate) {
  // A/B control: the identical kill with the liveness plane off. The
  // survivors exhaust the staleness window and park on the admission
  // gate forever; the bounded probe budget turns that deadlock into a
  // DeadlineExceeded instead of hanging the test binary.
  const Dataset d = FailoverData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;

  DistributedTrainerOptions opts = FailoverOptions();
  opts.fault_plan.fault_worker = 2;
  opts.fault_plan.kill_at_clock = 3;
  opts.heartbeat_timeout = 0.0;  // liveness plane off
  opts.rpc_retry.max_admission_probes = 3000;
  opts.rpc_retry.admission_probe_sleep = std::chrono::microseconds(0);

  auto result = TrainDistributed(d, loss, sched, rule, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST(FailoverTest, KillSurvivesALossyBusToo) {
  // Compose the two fault planes: the bus drops/duplicates/delays
  // messages AND a worker dies mid-run. Retries mask the former, the
  // heartbeat plane repairs the latter.
  const Dataset d = FailoverData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;

  DistributedTrainerOptions opts = FailoverOptions();
  opts.fault_plan.drop_request_prob = 0.10;
  opts.fault_plan.drop_response_prob = 0.05;
  opts.fault_plan.duplicate_prob = 0.05;
  opts.fault_plan.delay_prob = 0.10;
  opts.fault_plan.seed = 77;
  opts.fault_plan.fault_worker = 2;
  opts.fault_plan.kill_at_clock = 3;
  opts.heartbeat_timeout = 2.0;
  opts.rpc_retry.timeout = std::chrono::milliseconds(10);
  opts.rpc_retry.max_attempts = 40;
  opts.rpc_retry.initial_backoff = std::chrono::microseconds(100);

  auto result = TrainDistributed(d, loss, sched, rule, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().evicted_workers.size(), 1u);
  EXPECT_EQ(result.value().evicted_workers[0], 2);
  EXPECT_GT(result.value().examples_failed_over, 0);
  EXPECT_EQ(result.value().next_clock, opts.max_clocks);
  EXPECT_LT(result.value().final_objective, 0.5);
  EXPECT_GT(result.value().faults.total(), 0);
}

TEST(FailoverTest, HangShorterThanTimeoutIsNotEvicted) {
  // A worker that stalls (GC pause, network blip) but recovers inside
  // the timeout must NOT be evicted — eviction is for the dead, not the
  // slow (the paper's heterogeneity machinery handles the slow).
  const Dataset d = FailoverData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;

  DistributedTrainerOptions opts = FailoverOptions();
  opts.fault_plan.fault_worker = 2;
  opts.fault_plan.kill_at_clock = 3;
  opts.fault_plan.hang_seconds = 0.5;  // virtual; timeout is 2.0
  opts.heartbeat_timeout = 2.0;

  auto result = TrainDistributed(d, loss, sched, rule, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().evicted_workers.empty());
  EXPECT_EQ(result.value().examples_failed_over, 0);
  EXPECT_EQ(result.value().next_clock, opts.max_clocks);
  EXPECT_LT(result.value().final_objective, 0.5);
}

TEST(FailoverTest, HangLongerThanTimeoutIsEvictedAndUnblocksItself) {
  // The nastiest case: the victim is not gone, only wedged past the
  // timeout. The server evicts it; when it wakes, its requests are
  // rejected with FailedPrecondition, which the worker recognizes as
  // its own eviction (an orderly exit, not a run failure).
  const Dataset d = FailoverData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;

  DistributedTrainerOptions opts = FailoverOptions();
  opts.fault_plan.fault_worker = 2;
  opts.fault_plan.kill_at_clock = 3;
  opts.fault_plan.hang_seconds = 10.0;  // virtual; timeout is 2.0
  opts.heartbeat_timeout = 2.0;

  auto result = TrainDistributed(d, loss, sched, rule, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().evicted_workers.size(), 1u);
  EXPECT_EQ(result.value().evicted_workers[0], 2);
  EXPECT_GT(result.value().examples_failed_over, 0);
  EXPECT_EQ(result.value().next_clock, opts.max_clocks);
  EXPECT_LT(result.value().final_objective, 0.5);
}

}  // namespace
}  // namespace hetps
