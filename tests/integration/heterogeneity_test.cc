// Integration tests of the paper's headline claims on the simulator:
// protocol behaviour under stragglers and the ordering of the three
// consolidation rules.

#include <gtest/gtest.h>

#include "baselines/flexrr.h"
#include "core/consolidation.h"
#include "core/dyn_sgd.h"
#include "core/learning_rate.h"
#include "data/synthetic.h"
#include "sim/event_sim.h"
#include "util/rng.h"

namespace hetps {
namespace {

Dataset HetData() {
  SyntheticConfig cfg;
  cfg.num_examples = 600;
  cfg.num_features = 300;
  cfg.avg_nnz = 10;
  cfg.seed = 19;
  Dataset d = GenerateSynthetic(cfg);
  Rng rng(20);
  d.Shuffle(&rng);
  return d;
}

SimOptions BaseOptions() {
  SimOptions opts;
  opts.max_clocks = 25;
  opts.stop_on_convergence = false;
  opts.eval_every_pushes = 20;
  opts.eval_sample = 600;
  return opts;
}

TEST(HeterogeneityTest, BspRunTimeScalesWithHlButUpdatesDoNot) {
  const Dataset d = HetData();
  LogisticLoss loss;
  SspRule rule;
  FixedRate sched(0.01);
  SimOptions opts = BaseOptions();
  opts.sync = SyncPolicy::Bsp();
  const SimResult hl1 = RunSimulation(
      d, ClusterConfig::WithStragglers(8, 2, 1.0), rule, sched, loss,
      opts);
  const SimResult hl2 = RunSimulation(
      d, ClusterConfig::WithStragglers(8, 2, 2.0), rule, sched, loss,
      opts);
  // Hardware efficiency degrades ~2x; statistical efficiency is fixed by
  // the barrier (§3.1): same pushes per clock either way.
  EXPECT_GT(hl2.total_sim_seconds, 1.5 * hl1.total_sim_seconds);
  EXPECT_EQ(hl1.total_pushes, hl2.total_pushes);
}

TEST(HeterogeneityTest, SspAccumulateDivergesWhereConAndDynConverge) {
  // §3.3/§4: at a local rate the heterogeneity-aware rules handle easily,
  // plain accumulation blows up.
  const Dataset d = HetData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  SimOptions opts = BaseOptions();
  opts.sync = SyncPolicy::Ssp(3);
  const ClusterConfig cluster = ClusterConfig::WithStragglers(8, 2, 2.0);

  SspRule ssp;
  ConRule con;
  DynSgdRule dyn;
  const SimResult r_ssp =
      RunSimulation(d, cluster, ssp, sched, loss, opts);
  const SimResult r_con =
      RunSimulation(d, cluster, con, sched, loss, opts);
  const SimResult r_dyn =
      RunSimulation(d, cluster, dyn, sched, loss, opts);
  EXPECT_GT(r_ssp.min_objective, 1.0);  // diverged
  EXPECT_LT(r_con.min_objective, 0.35);
  EXPECT_LT(r_dyn.min_objective, 0.35);
}

TEST(HeterogeneityTest, DynSgdSuppressesStragglerDisturbance) {
  // varobj of DynSGD stays small under heterogeneity even at a rate where
  // accumulate oscillates (§7.4.1's varobj comparison).
  const Dataset d = HetData();
  LogisticLoss loss;
  FixedRate sched_small(0.02);
  FixedRate sched_large(1.0);
  SimOptions opts = BaseOptions();
  opts.sync = SyncPolicy::Ssp(3);
  const ClusterConfig cluster = ClusterConfig::WithStragglers(8, 2, 3.0);
  SspRule ssp;
  DynSgdRule dyn;
  const SimResult r_ssp =
      RunSimulation(d, cluster, ssp, sched_small, loss, opts);
  const SimResult r_dyn =
      RunSimulation(d, cluster, dyn, sched_large, loss, opts);
  // DynSGD with a 50x larger local rate still reaches a better and at
  // least as stable an objective.
  EXPECT_LT(r_dyn.min_objective, r_ssp.min_objective);
}

TEST(HeterogeneityTest, ClockAlignedStalenessAveragesHalfM) {
  // In clock-aligned mode every clock-c update eventually joins version
  // c, so the push-time staleness d runs 1..M per version and its mean is
  // exactly (M+1)/2 — independent of heterogeneity. (What heterogeneity
  // changes is the *order*: stragglers arrive late and get the small
  // 1/d weights; see DynSgdClockAlignedTest.)
  const Dataset d = HetData();
  LogisticLoss loss;
  DynSgdRule rule;
  FixedRate sched(0.5);
  SimOptions opts = BaseOptions();
  opts.sync = SyncPolicy::Ssp(5);
  for (double hl : {1.0, 4.0}) {
    const SimResult r = RunSimulation(
        d, ClusterConfig::WithStragglers(8, 2, hl), rule, sched, loss,
        opts);
    EXPECT_NEAR(r.mean_staleness, (8.0 + 1.0) / 2.0, 1e-9) << "HL " << hl;
  }
}

TEST(HeterogeneityTest, Algorithm2StalenessRespondsToHeterogeneity) {
  // Verbatim Algorithm 2 stamps versions by V(m), so heterogeneity
  // fragments version sharing and the observed μ moves.
  const Dataset d = HetData();
  LogisticLoss loss;
  DynSgdRule::Options dopts;
  dopts.version_mode = DynSgdRule::VersionMode::kAlgorithm2;
  DynSgdRule rule(dopts);
  FixedRate sched(0.5);
  SimOptions opts = BaseOptions();
  opts.sync = SyncPolicy::Ssp(5);
  const SimResult hom = RunSimulation(
      d, ClusterConfig::WithStragglers(8, 2, 1.0), rule, sched, loss,
      opts);
  const SimResult het = RunSimulation(
      d, ClusterConfig::WithStragglers(8, 2, 4.0), rule, sched, loss,
      opts);
  EXPECT_NE(hom.mean_staleness, het.mean_staleness);
  EXPECT_GE(het.mean_staleness, 1.0);
  EXPECT_LE(het.mean_staleness, 8.0);
}

TEST(HeterogeneityTest, FlexRrShrinksStragglerClockTime) {
  const Dataset d = HetData();
  LogisticLoss loss;
  ConRule rule;
  FixedRate sched(0.5);
  SimOptions opts = BaseOptions();
  opts.sync = SyncPolicy::Ssp(3);
  const ClusterConfig cluster = ClusterConfig::WithStragglers(6, 2, 3.0);
  const SimResult plain =
      RunSimulation(d, cluster, rule, sched, loss, opts);
  FlexRrMitigation flexrr;
  const SimResult mitigated =
      RunSimulation(d, cluster, rule, sched, loss, opts, &flexrr);
  EXPECT_GT(flexrr.examples_reassigned(), 0u);
  // Compute-bound stragglers finish sooner once data moves away.
  EXPECT_LT(mitigated.total_sim_seconds, plain.total_sim_seconds);
}

TEST(HeterogeneityTest, FlexRrCannotFixNetworkStragglers) {
  const Dataset d = HetData();
  LogisticLoss loss;
  ConRule rule;
  FixedRate sched(0.5);
  SimOptions opts = BaseOptions();
  opts.sync = SyncPolicy::Ssp(3);
  const ClusterConfig cluster = ClusterConfig::WithStragglers(
      6, 2, 6.0, 0.2, ClusterConfig::StragglerKind::kNetwork);
  const SimResult plain =
      RunSimulation(d, cluster, rule, sched, loss, opts);
  FlexRrMitigation flexrr;
  const SimResult mitigated =
      RunSimulation(d, cluster, rule, sched, loss, opts, &flexrr);
  // §7.3: data reassignment cannot shorten transmission time; the gain,
  // if any, is marginal.
  EXPECT_GT(mitigated.total_sim_seconds, 0.85 * plain.total_sim_seconds);
}

}  // namespace
}  // namespace hetps
