#include "baselines/flexrr.h"

#include <gtest/gtest.h>

#include "core/learning_rate.h"
#include "data/synthetic.h"
#include "math/loss.h"

namespace hetps {
namespace {

struct Harness {
  Harness() : dataset(MakeData()), loss(), rate(0.1), master(1, 3) {
    const auto shards = SplitData(dataset.size(), 3,
                                  ShardingPolicy::kContiguous);
    for (int m = 0; m < 3; ++m) {
      workers.push_back(std::make_unique<LocalWorkerSgd>(
          &dataset, shards[static_cast<size_t>(m)], &loss, &rate,
          LocalWorkerSgd::Options{}));
    }
    for (auto& w : workers) raw.push_back(w.get());
  }

  static Dataset MakeData() {
    SyntheticConfig cfg;
    cfg.num_examples = 90;
    cfg.num_features = 50;
    cfg.avg_nnz = 5;
    return GenerateSynthetic(cfg);
  }

  Dataset dataset;
  LogisticLoss loss;
  FixedRate rate;
  Master master;
  std::vector<std::unique_ptr<LocalWorkerSgd>> workers;
  std::vector<LocalWorkerSgd*> raw;
};

TEST(FlexRrTest, MovesDataFromStragglerToFastest) {
  Harness h;
  FlexRrMitigation flexrr;
  h.master.ReportClockTime(0, 1.0);
  h.master.ReportClockTime(1, 1.0);
  h.master.ReportClockTime(2, 3.0);  // straggler
  const size_t straggler_before = h.raw[2]->shard().size();
  const size_t fastest_before = h.raw[0]->shard().size();
  flexrr.OnClockEnd(2, /*clock=*/0, 3.0, &h.master, &h.raw);
  EXPECT_LT(h.raw[2]->shard().size(), straggler_before);
  EXPECT_GT(h.raw[0]->shard().size(), fastest_before);
  EXPECT_GT(flexrr.examples_reassigned(), 0u);
}

TEST(FlexRrTest, NoMoveWithinThreshold) {
  Harness h;
  FlexRrMitigation flexrr;
  h.master.ReportClockTime(0, 1.0);
  h.master.ReportClockTime(1, 1.1);
  h.master.ReportClockTime(2, 1.15);  // within 20%
  const size_t before = h.raw[2]->shard().size();
  flexrr.OnClockEnd(2, 0, 1.15, &h.master, &h.raw);
  EXPECT_EQ(h.raw[2]->shard().size(), before);
  EXPECT_EQ(flexrr.examples_reassigned(), 0u);
}

TEST(FlexRrTest, FastestWorkerNeverDonatesToItself) {
  Harness h;
  FlexRrMitigation flexrr;
  h.master.ReportClockTime(0, 1.0);
  const size_t before = h.raw[0]->shard().size();
  flexrr.OnClockEnd(0, 0, 1.0, &h.master, &h.raw);
  EXPECT_EQ(h.raw[0]->shard().size(), before);
}

TEST(FlexRrTest, RespectsMinimumShardSize) {
  Harness h;
  FlexRrMitigation::Options opts;
  opts.min_shard_size = 30;  // shards are exactly 30
  FlexRrMitigation flexrr(opts);
  h.master.ReportClockTime(0, 1.0);
  h.master.ReportClockTime(2, 5.0);
  flexrr.OnClockEnd(2, 0, 5.0, &h.master, &h.raw);
  EXPECT_EQ(h.raw[2]->shard().size(), 30u);
}

TEST(FlexRrTest, RepeatedReassignmentConverges) {
  Harness h;
  FlexRrMitigation::Options opts;
  opts.reassign_fraction = 0.2;
  opts.min_shard_size = 5;
  FlexRrMitigation flexrr(opts);
  h.master.ReportClockTime(0, 1.0);
  h.master.ReportClockTime(1, 1.0);
  h.master.ReportClockTime(2, 4.0);
  for (int i = 0; i < 50; ++i) {
    flexrr.OnClockEnd(2, i, 4.0, &h.master, &h.raw);
  }
  EXPECT_GE(h.raw[2]->shard().size(), 5u);
  // Total data conserved.
  EXPECT_EQ(h.raw[0]->shard().size() + h.raw[1]->shard().size() +
                h.raw[2]->shard().size(),
            90u);
}

TEST(FlexRrTest, SpreadsLoadAcrossTargetsWithinOneClock) {
  // Two stragglers reporting back-to-back must not both dump on the same
  // target: after the first move the target's estimated time inflates.
  Harness h;
  FlexRrMitigation::Options opts;
  opts.reassign_fraction = 0.3;
  opts.min_shard_size = 2;
  FlexRrMitigation flexrr(opts);
  h.master.ReportClockTime(0, 1.0);
  h.master.ReportClockTime(1, 1.05);
  h.master.ReportClockTime(2, 5.0);
  const size_t w0_before = h.raw[0]->shard().size();
  const size_t w1_before = h.raw[1]->shard().size();
  // The straggler reports twice before anyone else reports again.
  flexrr.OnClockEnd(2, 0, 5.0, &h.master, &h.raw);
  flexrr.OnClockEnd(2, 1, 5.0, &h.master, &h.raw);
  // Both fast workers received data (the second move went to worker 1
  // because worker 0's pending inflow inflated its estimate).
  EXPECT_GT(h.raw[0]->shard().size(), w0_before);
  EXPECT_GT(h.raw[1]->shard().size(), w1_before);
}

TEST(FlexRrTest, StopsWhenTargetsAreSaturated) {
  Harness h;
  FlexRrMitigation::Options opts;
  opts.reassign_fraction = 0.5;
  opts.min_shard_size = 2;
  FlexRrMitigation flexrr(opts);
  h.master.ReportClockTime(0, 2.8);
  h.master.ReportClockTime(1, 2.9);
  h.master.ReportClockTime(2, 3.0);  // barely slower than the others
  const size_t before = h.raw[2]->shard().size();
  flexrr.OnClockEnd(2, 0, 3.0, &h.master, &h.raw);
  // 3.0 <= 1.2 * 2.8: no move.
  EXPECT_EQ(h.raw[2]->shard().size(), before);
}

TEST(FlexRrDeathTest, ValidatesOptions) {
  FlexRrMitigation::Options bad;
  bad.straggler_threshold = 0.9;
  EXPECT_DEATH(FlexRrMitigation{bad}, "threshold");
  FlexRrMitigation::Options bad2;
  bad2.reassign_fraction = 0.0;
  EXPECT_DEATH(FlexRrMitigation{bad2}, "fraction");
}

}  // namespace
}  // namespace hetps
