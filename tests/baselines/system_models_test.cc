#include "baselines/system_models.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

TEST(SystemModelsTest, SparkIsSingleCoordinatorModelAveraging) {
  const SystemModel spark = MakeSparkBsp();
  EXPECT_EQ(spark.sync.protocol, Protocol::kBsp);
  EXPECT_EQ(spark.rule->name(), "ConSGD");  // averaging == ConRule 1/M
  EXPECT_EQ(spark.num_servers_override, 1);
  EXPECT_GT(spark.comm_overhead, 1.0);
}

TEST(SystemModelsTest, PetuumVariantsUseAccumulateRule) {
  EXPECT_EQ(MakePetuumBsp().rule->name(), "SspSGD");
  EXPECT_EQ(MakePetuumAsp().rule->name(), "SspSGD");
  EXPECT_EQ(MakePetuumSsp(3).rule->name(), "SspSGD");
  EXPECT_EQ(MakePetuumSsp(3).sync.staleness, 3);
  EXPECT_EQ(MakePetuumAsp().sync.protocol, Protocol::kAsp);
}

TEST(SystemModelsTest, TensorFlowModelsLessEfficientPs) {
  EXPECT_GT(MakeTensorFlowBsp().comm_overhead,
            MakePetuumBsp().comm_overhead);
}

TEST(SystemModelsTest, OursUseHeterogeneityAwareRules) {
  EXPECT_EQ(MakeConSgd(10).rule->name(), "ConSGD");
  EXPECT_EQ(MakeDynSgd(10).rule->name(), "DynSGD");
  EXPECT_EQ(MakeDynSgd(10).sync.staleness, 10);
}

TEST(SystemModelsTest, AdjustClusterAppliesOverrides) {
  const ClusterConfig base = ClusterConfig::Homogeneous(8, 4);
  const SystemModel spark = MakeSparkBsp();
  const ClusterConfig adjusted = spark.AdjustCluster(base);
  EXPECT_EQ(adjusted.num_servers, 1);
  EXPECT_LT(adjusted.net_bytes_per_sec, base.net_bytes_per_sec);
  EXPECT_GT(adjusted.net_latency, base.net_latency);
  // No override keeps the topology.
  const ClusterConfig same = MakePetuumBsp().AdjustCluster(base);
  EXPECT_EQ(same.num_servers, 4);
  EXPECT_DOUBLE_EQ(same.net_bytes_per_sec, base.net_bytes_per_sec);
}

TEST(SystemModelsTest, Table3RosterCoversAllSystems) {
  const auto roster = MakeTable3Roster(3);
  ASSERT_EQ(roster.size(), 8u);
  EXPECT_EQ(roster.front().name, "Spark");
  EXPECT_EQ(roster.back().name, "DynSGD");
}

}  // namespace
}  // namespace hetps
