#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/loss.h"

namespace hetps {
namespace {

Dataset TwoExampleSet() {
  Dataset d;
  Example a;
  a.features.PushBack(0, 1.0);
  a.label = 1.0;
  Example b;
  b.features.PushBack(1, 1.0);
  b.label = -1.0;
  d.Add(std::move(a));
  d.Add(std::move(b));
  return d;
}

TEST(DatasetTest, AddGrowsDimension) {
  Dataset d = TwoExampleSet();
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.dimension(), 2);
  Example c;
  c.features.PushBack(10, 1.0);
  d.Add(std::move(c));
  EXPECT_EQ(d.dimension(), 11);
}

TEST(DatasetTest, ConstructorValidatesDimension) {
  std::vector<Example> ex(1);
  ex[0].features.PushBack(5, 1.0);
  EXPECT_DEATH(Dataset(std::move(ex), 3), "exceeds declared dimension");
}

TEST(DatasetTest, ShufflePreservesSize) {
  Dataset d = TwoExampleSet();
  Rng rng(3);
  d.Shuffle(&rng);
  EXPECT_EQ(d.size(), 2u);
}

TEST(DatasetTest, AverageNnz) {
  Dataset d = TwoExampleSet();
  EXPECT_DOUBLE_EQ(d.AverageNnz(), 1.0);
  EXPECT_DOUBLE_EQ(Dataset().AverageNnz(), 0.0);
}

TEST(DatasetTest, ObjectiveAtZeroWeightsIsLog2ForLogistic) {
  Dataset d = TwoExampleSet();
  LogisticLoss loss;
  std::vector<double> w(2, 0.0);
  EXPECT_NEAR(d.Objective(loss, w, 0.0), std::log(2.0), 1e-12);
}

TEST(DatasetTest, ObjectiveIncludesL2Term) {
  Dataset d = TwoExampleSet();
  LogisticLoss loss;
  std::vector<double> w = {3.0, 0.0};
  const double without = d.Objective(loss, w, 0.0);
  const double with = d.Objective(loss, w, 0.1);
  EXPECT_NEAR(with - without, 0.5 * 0.1 * 9.0, 1e-12);
}

TEST(DatasetTest, ObjectiveSampleSubsets) {
  Dataset d = TwoExampleSet();
  LogisticLoss loss;
  std::vector<double> w = {10.0, 0.0};
  // Sample of 1 only sees the first (correctly classified) example.
  EXPECT_LT(d.ObjectiveSample(loss, w, 0.0, 1),
            d.Objective(loss, w, 0.0));
  // Sample larger than the set equals the full objective.
  EXPECT_DOUBLE_EQ(d.ObjectiveSample(loss, w, 0.0, 100),
                   d.Objective(loss, w, 0.0));
}

TEST(DatasetTest, AccuracyPerfectSeparator) {
  Dataset d = TwoExampleSet();
  LogisticLoss loss;
  std::vector<double> w = {5.0, -5.0};
  EXPECT_DOUBLE_EQ(d.Accuracy(loss, w), 1.0);
  std::vector<double> anti = {-5.0, 5.0};
  EXPECT_DOUBLE_EQ(d.Accuracy(loss, anti), 0.0);
}

TEST(DatasetTest, AccuracyHingeUsesSignThreshold) {
  Dataset d = TwoExampleSet();
  HingeLoss loss;
  std::vector<double> w = {1.0, -1.0};
  EXPECT_DOUBLE_EQ(d.Accuracy(loss, w), 1.0);
}

TEST(DatasetTest, MemoryBytesPositive) {
  Dataset d = TwoExampleSet();
  EXPECT_GT(d.MemoryBytes(), 2 * sizeof(Example));
}

TEST(DatasetTest, DebugStringMentionsShape) {
  Dataset d = TwoExampleSet();
  const std::string s = d.DebugString();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("dim=2"), std::string::npos);
}

}  // namespace
}  // namespace hetps
