#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/loss.h"

namespace hetps {
namespace {

TEST(SyntheticTest, DeterministicForSameConfig) {
  SyntheticConfig cfg;
  cfg.num_examples = 50;
  cfg.num_features = 100;
  cfg.avg_nnz = 8;
  Dataset a = GenerateSynthetic(cfg);
  Dataset b = GenerateSynthetic(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a.example(i).features == b.example(i).features);
    EXPECT_EQ(a.example(i).label, b.example(i).label);
  }
}

TEST(SyntheticTest, SeedChangesData) {
  SyntheticConfig cfg;
  cfg.num_examples = 50;
  cfg.num_features = 100;
  cfg.avg_nnz = 8;
  Dataset a = GenerateSynthetic(cfg);
  cfg.seed = 43;
  Dataset b = GenerateSynthetic(cfg);
  bool any_diff = false;
  for (size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = !(a.example(i).features == b.example(i).features);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, ShapeMatchesConfig) {
  SyntheticConfig cfg;
  cfg.num_examples = 200;
  cfg.num_features = 500;
  cfg.avg_nnz = 12;
  Dataset d = GenerateSynthetic(cfg);
  EXPECT_EQ(d.size(), 200u);
  EXPECT_EQ(d.dimension(), 500);
  EXPECT_NEAR(d.AverageNnz(), 12.0, 4.0);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_GE(d.example(i).features.nnz(), 1u);
    EXPECT_TRUE(d.example(i).label == 1.0 || d.example(i).label == -1.0);
  }
}

TEST(SyntheticTest, BinaryFeaturesAreOnes) {
  SyntheticConfig cfg;
  cfg.num_examples = 20;
  cfg.num_features = 100;
  cfg.avg_nnz = 5;
  cfg.binary_features = true;
  Dataset d = GenerateSynthetic(cfg);
  for (size_t i = 0; i < d.size(); ++i) {
    const auto& f = d.example(i).features;
    for (size_t k = 0; k < f.nnz(); ++k) {
      EXPECT_DOUBLE_EQ(f.value(k), 1.0);
    }
  }
}

TEST(SyntheticTest, LowNoiseDataIsNearlySeparable) {
  SyntheticConfig cfg;
  cfg.num_examples = 1500;
  cfg.num_features = 400;
  cfg.avg_nnz = 10;
  cfg.label_noise = 0.0;
  cfg.margin_gap = 0.4;
  Dataset d = GenerateSynthetic(cfg);
  // The ground-truth weights (same RNG stream prefix) classify most
  // examples correctly; verify via a freshly generated truth vector of
  // the same seed: instead, check a trained-free proxy — the labels must
  // not be one-sided degenerate.
  size_t positives = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    if (d.example(i).label > 0) ++positives;
  }
  EXPECT_GT(positives, d.size() / 10);
  EXPECT_LT(positives, d.size() * 9 / 10);
}

TEST(SyntheticTest, FeatureSkewConcentratesPopularity) {
  SyntheticConfig cfg;
  cfg.num_examples = 400;
  cfg.num_features = 1000;
  cfg.avg_nnz = 10;
  cfg.feature_skew = 1.3;
  Dataset d = GenerateSynthetic(cfg);
  size_t low_index_hits = 0;
  size_t total = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    const auto& f = d.example(i).features;
    for (size_t k = 0; k < f.nnz(); ++k) {
      ++total;
      if (f.index(k) < 50) ++low_index_hits;
    }
  }
  // With skew 1.3, far more than the uniform 5% of hits land in the
  // first 5% of the index space.
  EXPECT_GT(static_cast<double>(low_index_hits) /
                static_cast<double>(total),
            0.25);
}

TEST(SyntheticTest, PresetsHaveDocumentedShapes) {
  const SyntheticConfig url = UrlLikeConfig(0.25);
  EXPECT_EQ(url.num_examples, 1000u);
  EXPECT_TRUE(url.binary_features);
  const SyntheticConfig ctr = CtrLikeConfig(0.5);
  EXPECT_EQ(ctr.num_examples, 4000u);
  EXPECT_GT(ctr.label_noise, url.label_noise);
  EXPECT_LT(ctr.margin_gap, url.margin_gap);
}

TEST(GenerateGroundTruthTest, DensityControlsSparsity) {
  Rng rng(7);
  const auto w = GenerateGroundTruth(2000, 0.25, &rng);
  size_t nnz = 0;
  for (double v : w) {
    if (v != 0.0) ++nnz;
  }
  EXPECT_NEAR(static_cast<double>(nnz) / 2000.0, 0.25, 0.06);
}

}  // namespace
}  // namespace hetps
