#include "data/sharding.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace hetps {
namespace {

// Every index appears exactly once across shards, for both policies and a
// sweep of sizes (property-style).
class SplitDataTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t,
                                                 ShardingPolicy>> {};

TEST_P(SplitDataTest, PartitionIsExactCover) {
  const auto& [n, workers, policy] = GetParam();
  const auto shards = SplitData(n, workers, policy);
  ASSERT_EQ(shards.size(), workers);
  std::set<size_t> seen;
  for (const auto& shard : shards) {
    for (size_t idx : shard.example_indices) {
      EXPECT_LT(idx, n);
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST_P(SplitDataTest, ShardSizesBalanced) {
  const auto& [n, workers, policy] = GetParam();
  const auto shards = SplitData(n, workers, policy);
  size_t lo = n;
  size_t hi = 0;
  for (const auto& shard : shards) {
    lo = std::min(lo, shard.size());
    hi = std::max(hi, shard.size());
  }
  EXPECT_LE(hi - lo, 1u) << "imbalanced shards";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitDataTest,
    ::testing::Combine(::testing::Values<size_t>(0, 1, 7, 100, 101),
                       ::testing::Values<size_t>(1, 3, 8),
                       ::testing::Values(ShardingPolicy::kContiguous,
                                         ShardingPolicy::kRoundRobin)));

TEST(SplitDataTest, ContiguousIsContiguous) {
  const auto shards = SplitData(10, 3, ShardingPolicy::kContiguous);
  for (const auto& shard : shards) {
    for (size_t i = 1; i < shard.size(); ++i) {
      EXPECT_EQ(shard.example_indices[i],
                shard.example_indices[i - 1] + 1);
    }
  }
}

TEST(SplitDataTest, RoundRobinStrides) {
  const auto shards = SplitData(9, 3, ShardingPolicy::kRoundRobin);
  EXPECT_EQ(shards[0].example_indices, (std::vector<size_t>{0, 3, 6}));
  EXPECT_EQ(shards[1].example_indices, (std::vector<size_t>{1, 4, 7}));
}

TEST(ReassignFractionTest, MovesTailExamples) {
  DataShard from;
  from.example_indices = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  DataShard to;
  to.example_indices = {100};
  ReassignFraction(&from, &to, 0.3);
  EXPECT_EQ(from.size(), 7u);
  EXPECT_EQ(to.size(), 4u);
  EXPECT_EQ(to.example_indices.back(), 9u);
  EXPECT_EQ(from.example_indices.back(), 6u);
}

TEST(ReassignFractionTest, ZeroAndTinyFractionsAreNoOps) {
  DataShard from;
  from.example_indices = {0, 1, 2};
  DataShard to;
  ReassignFraction(&from, &to, 0.0);
  EXPECT_EQ(from.size(), 3u);
  ReassignFraction(&from, &to, 0.1);  // 0.1 * 3 < 1 example
  EXPECT_EQ(from.size(), 3u);
}

TEST(ReassignFractionTest, FullFractionEmptiesShard) {
  DataShard from;
  from.example_indices = {0, 1};
  DataShard to;
  ReassignFraction(&from, &to, 1.0);
  EXPECT_EQ(from.size(), 0u);
  EXPECT_EQ(to.size(), 2u);
}

TEST(ReassignAcrossTest, SplitsEvenlyWithRemainderToEarlierShards) {
  DataShard from;
  from.example_indices = {0, 1, 2, 3, 4, 5, 6};
  DataShard a, b, c;
  a.example_indices = {100};
  const size_t moved = ReassignAcross(&from, {&a, &b, &c});
  EXPECT_EQ(moved, 7u);
  EXPECT_TRUE(from.example_indices.empty());
  // 7 = 3 + 2 + 2: the extra example goes to the earliest survivor.
  EXPECT_EQ(a.size(), 4u);  // kept its own {100} plus 3 orphans
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(c.size(), 2u);
  // Exact cover: every orphan landed exactly once.
  std::set<size_t> seen;
  for (const DataShard* s : {&a, &b, &c}) {
    for (size_t idx : s->example_indices) seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 8u);
  for (size_t idx = 0; idx < 7; ++idx) EXPECT_TRUE(seen.count(idx));
}

TEST(ReassignAcrossTest, EmptySurvivorsDropsTheShard) {
  DataShard from;
  from.example_indices = {0, 1};
  EXPECT_EQ(ReassignAcross(&from, {}), 0u);
  EXPECT_TRUE(from.example_indices.empty());
}

TEST(ReassignAcrossTest, EmptySourceIsNoOp) {
  DataShard from;
  DataShard to;
  to.example_indices = {5};
  EXPECT_EQ(ReassignAcross(&from, {&to}), 0u);
  EXPECT_EQ(to.size(), 1u);
}

TEST(ReassignAcrossTest, SingleSurvivorInheritsEverything) {
  DataShard from;
  from.example_indices = {3, 1, 4};
  DataShard to;
  EXPECT_EQ(ReassignAcross(&from, {&to}), 3u);
  EXPECT_EQ(to.size(), 3u);
  EXPECT_TRUE(from.example_indices.empty());
}

}  // namespace
}  // namespace hetps
