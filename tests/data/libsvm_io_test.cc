#include "data/libsvm_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace hetps {
namespace {

TEST(LibSvmTest, ParsesBasicContent) {
  auto result = ParseLibSvm("+1 1:0.5 3:2.0\n-1 2:1.0\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& d = result.value();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.dimension(), 3);
  EXPECT_DOUBLE_EQ(d.example(0).label, 1.0);
  EXPECT_DOUBLE_EQ(d.example(0).features.ValueAt(0), 0.5);
  EXPECT_DOUBLE_EQ(d.example(0).features.ValueAt(2), 2.0);
  EXPECT_DOUBLE_EQ(d.example(1).label, -1.0);
}

TEST(LibSvmTest, ZeroLabelMapsToNegative) {
  auto result = ParseLibSvm("0 1:1\n1 2:1\n");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().example(0).label, -1.0);
  EXPECT_DOUBLE_EQ(result.value().example(1).label, 1.0);
}

TEST(LibSvmTest, SkipsCommentsAndBlankLines) {
  auto result = ParseLibSvm("# header\n\n+1 1:1\n   \n-1 2:1\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
}

TEST(LibSvmTest, RejectsMalformedFeature) {
  EXPECT_FALSE(ParseLibSvm("+1 nocolon\n").ok());
  EXPECT_FALSE(ParseLibSvm("+1 0:1\n").ok());   // 1-based indices
  EXPECT_FALSE(ParseLibSvm("+1 2:1 1:1\n").ok());  // must increase
  EXPECT_FALSE(ParseLibSvm("notalabel 1:1\n").ok());
}

TEST(LibSvmTest, RoundTripThroughFile) {
  auto parsed = ParseLibSvm("+1 1:0.25 7:-3\n-1 2:1.5\n");
  ASSERT_TRUE(parsed.ok());
  const std::string path = testing::TempDir() + "/hetps_libsvm_rt.txt";
  ASSERT_TRUE(WriteLibSvmFile(parsed.value(), path).ok());
  auto reread = ReadLibSvmFile(path);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ(reread.value().size(), 2u);
  EXPECT_DOUBLE_EQ(reread.value().example(0).features.ValueAt(6), -3.0);
  EXPECT_DOUBLE_EQ(reread.value().example(1).features.ValueAt(1), 1.5);
  std::remove(path.c_str());
}

TEST(LibSvmTest, MissingFileIsIOError) {
  auto result = ReadLibSvmFile("/nonexistent/path/file.libsvm");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(LibSvmTest, EmptyContentYieldsEmptyDataset) {
  auto result = ParseLibSvm("");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(LibSvmTest, LabelOnlyLineParses) {
  auto result = ParseLibSvm("+1\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().example(0).features.nnz(), 0u);
}

}  // namespace
}  // namespace hetps
