#include "data/transforms.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "models/linear_model.h"
#include "util/rng.h"

namespace hetps {
namespace {

Dataset WideData() {
  SyntheticConfig cfg;
  cfg.num_examples = 200;
  cfg.num_features = 5000;
  cfg.avg_nnz = 10;
  cfg.seed = 27;
  return GenerateSynthetic(cfg);
}

TEST(HashFeaturesTest, DimensionAndLabelsPreserved) {
  const Dataset d = WideData();
  const Dataset hashed = HashFeatures(d, 256);
  EXPECT_EQ(hashed.size(), d.size());
  EXPECT_EQ(hashed.dimension(), 256);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(hashed.example(i).label, d.example(i).label);
    EXPECT_LE(hashed.example(i).features.MinimumDimension(), 256);
    EXPECT_LE(hashed.example(i).features.nnz(),
              d.example(i).features.nnz());
  }
}

TEST(HashFeaturesTest, DeterministicPerSeed) {
  const Dataset d = WideData();
  const Dataset a = HashFeatures(d, 128, 9);
  const Dataset b = HashFeatures(d, 128, 9);
  const Dataset c = HashFeatures(d, 128, 10);
  bool differs = false;
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_TRUE(a.example(i).features == b.example(i).features);
    differs =
        differs || !(a.example(i).features == c.example(i).features);
  }
  EXPECT_TRUE(differs);
}

TEST(HashFeaturesTest, HashedDataStillLearnable) {
  // The point of the trick: a 5000-dim problem squeezed into 512 buckets
  // must remain trainable.
  Dataset hashed = HashFeatures(WideData(), 512);
  Rng rng(3);
  hashed.Shuffle(&rng);
  LinearModelConfig cfg;
  cfg.num_workers = 2;
  cfg.max_clocks = 12;
  cfg.learning_rate = 0.5;
  auto model = LinearModel::Train(hashed, cfg);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model.value().Accuracy(hashed), 0.75);
}

TEST(NormalizeExamplesTest, UnitNorms) {
  const Dataset d = WideData();
  const Dataset n = NormalizeExamples(d);
  for (size_t i = 0; i < n.size(); ++i) {
    const double norm = n.example(i).features.SquaredNorm();
    if (d.example(i).features.nnz() > 0) {
      EXPECT_NEAR(norm, 1.0, 1e-9);
    }
  }
  EXPECT_EQ(n.dimension(), d.dimension());
}

TEST(NormalizeExamplesTest, KeepsZeroVectors) {
  Dataset d;
  Example empty;
  empty.label = 1.0;
  d.Add(std::move(empty));
  const Dataset n = NormalizeExamples(d);
  EXPECT_EQ(n.example(0).features.nnz(), 0u);
}

TEST(TrainTestSplitTest, SizesAndDisjointness) {
  const Dataset d = WideData();
  const auto [train, test] = TrainTestSplit(d, 0.25, 5);
  EXPECT_EQ(test.size(), d.size() / 4);
  EXPECT_EQ(train.size() + test.size(), d.size());
  EXPECT_EQ(train.dimension(), d.dimension());
  EXPECT_EQ(test.dimension(), d.dimension());
}

TEST(TrainTestSplitTest, DeterministicPerSeed) {
  const Dataset d = WideData();
  const auto [a_train, a_test] = TrainTestSplit(d, 0.3, 11);
  const auto [b_train, b_test] = TrainTestSplit(d, 0.3, 11);
  ASSERT_EQ(a_test.size(), b_test.size());
  for (size_t i = 0; i < a_test.size(); ++i) {
    EXPECT_TRUE(a_test.example(i).features ==
                b_test.example(i).features);
  }
}

TEST(TrainTestSplitTest, ZeroFractionKeepsEverythingInTrain) {
  const Dataset d = WideData();
  const auto [train, test] = TrainTestSplit(d, 0.0);
  EXPECT_EQ(train.size(), d.size());
  EXPECT_TRUE(test.empty());
}

}  // namespace
}  // namespace hetps
