#include "obs/flight_recorder.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace hetps {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(FlightRecorder, DisabledRecordIsANoOp) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.enabled());
  rec.Record("worker_evicted", 2, 5);
  EXPECT_EQ(rec.buffered_count(), 0u);
  EXPECT_EQ(rec.appended_count(), 0);
  // A disabled recorder still serializes to a valid (empty) document.
  EXPECT_TRUE(ValidateFlightRecJson(rec.ToJsonString()).ok())
      << rec.ToJsonString();
}

TEST(FlightRecorder, RecordsAndSerializesEvents) {
  FlightRecorder rec;
  rec.Start(/*capacity_events=*/16);
  rec.Record("worker_suspected", 2, 4, 1.5, "missed heartbeats");
  rec.Record("worker_evicted", 2, 4);
  rec.Record("shard_failover", 2, -1, 3.0);

  EXPECT_EQ(rec.buffered_count(), 3u);
  EXPECT_EQ(rec.appended_count(), 3);
  EXPECT_EQ(rec.dropped_count(), 0);

  const std::string json = rec.ToJsonString();
  EXPECT_TRUE(ValidateFlightRecJson(json).ok())
      << ValidateFlightRecJson(json).ToString() << "\n" << json;
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok());
  const auto& events = doc.value().Find("events")->array;
  ASSERT_EQ(events.size(), 3u);

  const JsonValue& e0 = events[0];
  EXPECT_EQ(e0.Find("kind")->string_value, "worker_suspected");
  EXPECT_DOUBLE_EQ(e0.Find("worker")->number_value, 2.0);
  EXPECT_DOUBLE_EQ(e0.Find("clock")->number_value, 4.0);
  EXPECT_DOUBLE_EQ(e0.Find("value")->number_value, 1.5);
  EXPECT_EQ(e0.Find("note")->string_value, "missed heartbeats");

  // seq is strictly increasing in append order; note omitted when null.
  EXPECT_LT(e0.Find("seq")->number_value,
            events[1].Find("seq")->number_value);
  EXPECT_LT(events[1].Find("seq")->number_value,
            events[2].Find("seq")->number_value);
  EXPECT_EQ(events[1].Find("note"), nullptr);
}

TEST(FlightRecorder, WraparoundKeepsNewestEvents) {
  // 16 is the floor capacity Start() enforces.
  FlightRecorder rec;
  rec.Start(/*capacity_events=*/16);
  static const char* const kKinds[] = {
      "e0",  "e1",  "e2",  "e3",  "e4",  "e5",  "e6",
      "e7",  "e8",  "e9",  "e10", "e11", "e12", "e13",
      "e14", "e15", "e16", "e17", "e18", "e19"};
  for (int i = 0; i < 20; ++i) rec.Record(kKinds[i], i);
  EXPECT_EQ(rec.buffered_count(), 16u);
  EXPECT_EQ(rec.appended_count(), 20);
  EXPECT_EQ(rec.dropped_count(), 4);

  auto doc = ParseJson(rec.ToJsonString());
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ(doc.value().Find("dropped")->number_value, 4.0);
  const auto& events = doc.value().Find("events")->array;
  ASSERT_EQ(events.size(), 16u);
  // Oldest-to-newest, and only the newest sixteen survive.
  EXPECT_EQ(events[0].Find("kind")->string_value, "e4");
  EXPECT_EQ(events[15].Find("kind")->string_value, "e19");
  EXPECT_DOUBLE_EQ(events[0].Find("seq")->number_value, 4.0);
  EXPECT_DOUBLE_EQ(events[15].Find("seq")->number_value, 19.0);
}

TEST(FlightRecorder, StartWithNewCapacityClearsRing) {
  FlightRecorder rec;
  rec.Start(16);
  rec.Record("old");
  rec.Start(32);  // resize clears
  EXPECT_EQ(rec.buffered_count(), 0u);
  rec.Record("new");
  EXPECT_EQ(rec.buffered_count(), 1u);
  // Same-capacity Start is idempotent and keeps buffered events.
  rec.Start(32);
  EXPECT_EQ(rec.buffered_count(), 1u);
}

TEST(FlightRecorder, SetNowFnStampsVirtualTime) {
  FlightRecorder rec;
  rec.Start(8);
  int64_t virtual_now = 1250;
  rec.SetNowFn([&virtual_now] { return virtual_now; });
  rec.Record("clock_advance");
  virtual_now = 99000;
  rec.Record("clock_advance");
  auto doc = ParseJson(rec.ToJsonString());
  ASSERT_TRUE(doc.ok());
  const auto& events = doc.value().Find("events")->array;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].Find("ts_us")->number_value, 1250.0);
  EXPECT_DOUBLE_EQ(events[1].Find("ts_us")->number_value, 99000.0);
}

TEST(FlightRecorder, DumpNowWritesBlackBoxWithReason) {
  const std::string path = TempPath("flightrec_dump.json");
  FlightRecorder rec;
  rec.Start(8);
  rec.SetDumpPath(path);
  rec.Record("fault.kill", 1, 3);
  rec.DumpNow("worker_evicted");

  const std::string json = ReadFileOrDie(path);
  EXPECT_TRUE(ValidateFlightRecJson(json).ok()) << json;
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().Find("dump_reason")->string_value,
            "worker_evicted");
  ASSERT_EQ(doc.value().Find("events")->array.size(), 1u);
  std::remove(path.c_str());

  // Without a dump path, DumpNow is a best-effort no-op.
  FlightRecorder pathless;
  pathless.Start(8);
  pathless.DumpNow("noop");
}

TEST(FlightRecorder, ConcurrentWritersWrapCleanly) {
  // TSan target: many threads hammering a tiny ring while a reader
  // serializes concurrently. Correctness bar: no data race, no torn
  // events, counts add up, and surviving seqs are distinct.
  FlightRecorder rec;
  rec.Start(/*capacity_events=*/32);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.Record("concurrent", t, i);
      }
    });
  }
  threads.emplace_back([&rec] {
    for (int i = 0; i < 50; ++i) {
      const std::string json = rec.ToJsonString();
      EXPECT_TRUE(ValidateFlightRecJson(json).ok());
    }
  });
  for (auto& t : threads) t.join();

  EXPECT_EQ(rec.appended_count(), kThreads * kPerThread);
  EXPECT_EQ(rec.buffered_count(), 32u);
  EXPECT_EQ(rec.dropped_count(), kThreads * kPerThread - 32);

  auto doc = ParseJson(rec.ToJsonString());
  ASSERT_TRUE(doc.ok());
  const auto& events = doc.value().Find("events")->array;
  ASSERT_EQ(events.size(), 32u);
  std::set<double> seqs;
  for (const JsonValue& e : events) {
    seqs.insert(e.Find("seq")->number_value);
  }
  EXPECT_EQ(seqs.size(), 32u);  // no duplicated or torn slots
}

TEST(FlightRecorder, ClearDiscardsEventsButStaysEnabled) {
  FlightRecorder rec;
  rec.Start(8);
  rec.Record("a");
  rec.Clear();
  EXPECT_TRUE(rec.enabled());
  EXPECT_EQ(rec.buffered_count(), 0u);
  rec.Record("b");
  EXPECT_EQ(rec.buffered_count(), 1u);
}

TEST(ValidateFlightRecJsonTest, RejectsAdversarialInputs) {
  // Truncated mid-write (the black box died mid-dump).
  EXPECT_FALSE(ValidateFlightRecJson(
                   "{\"schema\":\"hetps.flightrec.v1\",\"appended\":2,"
                   "\"dropped\":0,\"events\":[{\"seq\":0,")
                   .ok());
  // Unknown schema string.
  EXPECT_FALSE(ValidateFlightRecJson(
                   "{\"schema\":\"hetps.flightrec.v9\",\"appended\":0,"
                   "\"dropped\":0,\"events\":[]}")
                   .ok());
  // Non-monotone sequence numbers (a torn or hand-edited ring).
  EXPECT_FALSE(ValidateFlightRecJson(
                   "{\"schema\":\"hetps.flightrec.v1\",\"appended\":2,"
                   "\"dropped\":0,\"events\":["
                   "{\"seq\":5,\"ts_us\":0,\"kind\":\"a\",\"worker\":-1,"
                   "\"clock\":-1,\"value\":0},"
                   "{\"seq\":4,\"ts_us\":1,\"kind\":\"b\",\"worker\":-1,"
                   "\"clock\":-1,\"value\":0}]}")
                   .ok());
  // Event without a kind.
  EXPECT_FALSE(ValidateFlightRecJson(
                   "{\"schema\":\"hetps.flightrec.v1\",\"appended\":1,"
                   "\"dropped\":0,\"events\":["
                   "{\"seq\":0,\"ts_us\":0,\"worker\":-1,\"clock\":-1,"
                   "\"value\":0}]}")
                   .ok());
  EXPECT_FALSE(ValidateFlightRecJson("[]").ok());
  EXPECT_FALSE(ValidateFlightRecJson("not json").ok());
}

}  // namespace
}  // namespace hetps
