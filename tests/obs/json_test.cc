#include "obs/json.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(ParseJson("null").value().is_null());
  EXPECT_TRUE(ParseJson("true").value().bool_value);
  EXPECT_FALSE(ParseJson("false").value().bool_value);
  EXPECT_DOUBLE_EQ(ParseJson("42").value().number_value, 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-1.5e3").value().number_value, -1500.0);
  EXPECT_EQ(ParseJson("\"hi\"").value().string_value, "hi");
}

TEST(JsonParse, EscapesRoundTrip) {
  auto v = ParseJson("\"a\\\"b\\\\c\\n\\t\\u0041\"");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v.value().string_value, "a\"b\\c\n\tA");
}

TEST(JsonParse, UnicodeEscapeToUtf8) {
  auto v = ParseJson("\"\\u00e9\\u20ac\"");  // é €
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().string_value, "\xc3\xa9\xe2\x82\xac");
}

TEST(JsonParse, ArraysAndObjects) {
  auto v = ParseJson("{\"a\": [1, 2, 3], \"b\": {\"c\": true}}");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const JsonValue& doc = v.value();
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number_value, 2.0);
  const JsonValue* b = doc.Find("b");
  ASSERT_NE(b, nullptr);
  const JsonValue* c = b->Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->is_bool());
}

TEST(JsonParse, PreservesInsertionOrder) {
  auto v = ParseJson("{\"z\":1,\"a\":2,\"m\":3}");
  ASSERT_TRUE(v.ok());
  const auto& obj = v.value().object;
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());          // trailing garbage
  EXPECT_FALSE(ParseJson("{\"a\":1,\"a\":2}").ok());  // duplicate key
  EXPECT_FALSE(ParseJson("nul").ok());
}

TEST(JsonParse, DepthLimit) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string ok(30, '[');
  ok += std::string(30, ']');
  EXPECT_TRUE(ParseJson(ok).ok());
}

TEST(JsonEscapeTest, ControlAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("\n\t"), "\\n\\t");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(AppendJsonDoubleTest, FiniteAndNonFinite) {
  std::string s;
  AppendJsonDouble(&s, 1.5);
  EXPECT_EQ(s, "1.5");
  s.clear();
  AppendJsonDouble(&s, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(s, "0");  // NaN is not valid JSON
  // Round-trips through the parser.
  s.clear();
  AppendJsonDouble(&s, 0.1);
  auto v = ParseJson(s);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v.value().number_value, 0.1);
}

}  // namespace
}  // namespace hetps
