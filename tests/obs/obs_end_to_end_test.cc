// End-to-end check of the observability plane: a real threaded training
// run and a simulated run must both land metrics.json / trace.json
// artifacts carrying the promised signals (staleness quantiles,
// per-partition push/pull latency, compute-vs-wait breakdown, RPC fault
// counters) — the contract CI's obs-smoke job also verifies via the CLI.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/consolidation.h"
#include "core/learning_rate.h"
#include "data/synthetic.h"
#include "engine/distributed_trainer.h"
#include "engine/threaded_trainer.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_reporter.h"
#include "obs/trace.h"
#include "sim/cluster_config.h"
#include "sim/event_sim.h"

namespace hetps {
namespace {

Dataset SmallData() {
  SyntheticConfig cfg = UrlLikeConfig(0.05, 5);
  return GenerateSynthetic(cfg);
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class ObsEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalMetrics().ResetValues();
    TraceRecorder::Global().Clear();
    TraceOptions topts;
    topts.buffer_kb_per_thread = 64;
    TraceRecorder::Global().Start(topts);
  }
  void TearDown() override {
    TraceRecorder::Global().Stop();
    std::remove(metrics_path_.c_str());
    std::remove(trace_path_.c_str());
  }

  void CheckArtifacts(const char* context) {
    const std::string metrics = Slurp(metrics_path_);
    const std::string trace = Slurp(trace_path_);
    ASSERT_FALSE(metrics.empty()) << context;
    ASSERT_FALSE(trace.empty()) << context;
    EXPECT_TRUE(ValidateMetricsJson(metrics).ok()) << context;
    EXPECT_TRUE(ValidateChromeTraceJson(trace).ok()) << context;
    // The promised signals, by key, inside the parsed document.
    auto doc = ParseJson(metrics);
    ASSERT_TRUE(doc.ok()) << context;
    const JsonValue* hists = doc.value().Find("metrics")->Find(
        "histograms");
    ASSERT_NE(hists, nullptr) << context;
    const JsonValue* staleness = hists->Find("worker.staleness{worker=0}");
    ASSERT_NE(staleness, nullptr) << context;
    EXPECT_NE(staleness->Find("p50"), nullptr) << context;
    EXPECT_NE(staleness->Find("p99"), nullptr) << context;
    EXPECT_NE(hists->Find("ps.push_piece_us{partition=0}"), nullptr)
        << context;
    EXPECT_NE(hists->Find("ps.pull_piece_us{partition=0}"), nullptr)
        << context;
    const JsonValue* gauges =
        doc.value().Find("metrics")->Find("gauges");
    ASSERT_NE(gauges, nullptr) << context;
    EXPECT_NE(gauges->Find("worker.compute_seconds{worker=0}"), nullptr)
        << context;
    EXPECT_NE(gauges->Find("worker.wait_seconds{worker=0}"), nullptr)
        << context;
  }

  // Unique per test: ctest runs each test as its own process in
  // parallel, so a shared fixed name would race across processes.
  static std::string UniquePath(const char* suffix) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "obs_e2e_" + info->name() + suffix;
  }
  std::string metrics_path_ = UniquePath("_metrics.json");
  std::string trace_path_ = UniquePath("_trace.json");
};

TEST_F(ObsEndToEndTest, ThreadedRunEmitsGoldenArtifacts) {
  const Dataset data = SmallData();
  auto rule = MakeConsolidationRule("dyn");
  auto loss = MakeLoss("logistic");
  FixedRate sched(0.3);

  RunReporterOptions opts;
  opts.metrics_out = metrics_path_;
  opts.trace_out = trace_path_;
  opts.report_every = 2;
  opts.run_info = {{"command", "test.threaded"}};
  RunReporter reporter(opts);

  ThreadedTrainerOptions topts;
  topts.num_workers = 3;
  topts.num_servers = 2;
  topts.max_clocks = 6;
  topts.eval_sample = 200;
  int epochs_seen = 0;
  topts.on_epoch = [&](int epoch) {
    ++epochs_seen;
    reporter.OnEpoch(epoch);
  };
  const ThreadedTrainResult r =
      TrainThreaded(data, *loss, sched, *rule, topts);
  EXPECT_EQ(epochs_seen, 6);
  ASSERT_EQ(r.worker_breakdown.size(), 3u);
  EXPECT_EQ(r.worker_breakdown[0].clocks_completed, 6);
  EXPECT_GT(r.worker_breakdown[0].compute_seconds, 0.0);
  ASSERT_TRUE(reporter.WriteFinal().ok());
  CheckArtifacts("threaded");
}

TEST_F(ObsEndToEndTest, SimulatedRunEmitsGoldenArtifactsInVirtualTime) {
  const Dataset data = SmallData();
  auto rule = MakeConsolidationRule("dyn");
  auto loss = MakeLoss("logistic");
  FixedRate sched(1.0);

  RunReporterOptions opts;
  opts.metrics_out = metrics_path_;
  opts.trace_out = trace_path_;
  opts.run_info = {{"command", "test.sim"}};
  RunReporter reporter(opts);

  SimOptions sopts;
  sopts.max_clocks = 8;
  sopts.stop_on_convergence = false;
  sopts.eval_sample = 200;
  int epochs_seen = 0;
  sopts.on_epoch = [&](int epoch) {
    ++epochs_seen;
    reporter.OnEpoch(epoch);
  };
  const ClusterConfig cluster =
      ClusterConfig::WithStragglers(4, 2, 2.0, 0.25);
  const SimResult r =
      RunSimulation(data, cluster, *rule, sched, *loss, sopts);
  EXPECT_EQ(epochs_seen, 8);
  ASSERT_EQ(r.worker_breakdown.size(), 4u);
  ASSERT_TRUE(reporter.WriteFinal().ok());
  CheckArtifacts("simulated");

  // Virtual-time events are tagged pid 1 so they sit on their own
  // Perfetto track group, distinct from wall-clock (pid 0) events.
  auto doc = ParseJson(Slurp(trace_path_));
  ASSERT_TRUE(doc.ok());
  const JsonValue* events = doc.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_sim_compute = false;
  for (const JsonValue& ev : events->array) {
    const JsonValue* name = ev.Find("name");
    const JsonValue* pid = ev.Find("pid");
    if (name != nullptr && pid != nullptr &&
        name->string_value == "worker.compute" &&
        pid->number_value == 1.0) {
      saw_sim_compute = true;
      const JsonValue* dur = ev.Find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GT(dur->number_value, 0.0);
    }
  }
  EXPECT_TRUE(saw_sim_compute);
}

TEST_F(ObsEndToEndTest, DistributedRunCarriesRpcCountersAndBreakdown) {
  const Dataset data = SmallData();
  auto rule = MakeConsolidationRule("dyn");
  auto loss = MakeLoss("logistic");
  FixedRate sched(0.3);

  DistributedTrainerOptions dopts;
  dopts.num_workers = 2;
  dopts.num_servers = 2;
  dopts.max_clocks = 4;
  dopts.eval_sample = 200;
  int epochs_seen = 0;
  dopts.on_epoch = [&](int) { ++epochs_seen; };
  auto result = TrainDistributed(data, *loss, sched, *rule, dopts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(epochs_seen, 4);
  ASSERT_EQ(result.value().worker_breakdown.size(), 2u);
  EXPECT_GT(result.value().worker_breakdown[0].compute_seconds, 0.0);
  EXPECT_GT(result.value().worker_breakdown[0].comm_seconds, 0.0);
  // The bus pushed its delivery/fault counters into the global registry.
  EXPECT_GT(GlobalMetrics().counter("bus.delivered")->value(), 0);
  const std::string json = GlobalMetrics().JsonSnapshot();
  EXPECT_NE(json.find("bus.fault.dropped_requests"), std::string::npos);
  EXPECT_NE(json.find("rpc.client_retries"), std::string::npos);
  EXPECT_NE(json.find("rpc.handle_us{op=push}"), std::string::npos);
}

}  // namespace
}  // namespace hetps
