// End-to-end check of the observability plane: a real threaded training
// run and a simulated run must both land metrics.json / trace.json
// artifacts carrying the promised signals (staleness quantiles,
// per-partition push/pull latency, compute-vs-wait breakdown, RPC fault
// counters) — the contract CI's obs-smoke job also verifies via the CLI.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/consolidation.h"
#include "core/learning_rate.h"
#include "data/synthetic.h"
#include "engine/distributed_trainer.h"
#include "engine/threaded_trainer.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_reporter.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/cluster_config.h"
#include "sim/event_sim.h"

namespace hetps {
namespace {

Dataset SmallData() {
  SyntheticConfig cfg = UrlLikeConfig(0.05, 5);
  return GenerateSynthetic(cfg);
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class ObsEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalMetrics().ResetValues();
    TraceRecorder::Global().Clear();
    TraceOptions topts;
    topts.buffer_kb_per_thread = 64;
    TraceRecorder::Global().Start(topts);
  }
  void TearDown() override {
    TraceRecorder::Global().Stop();
    std::remove(metrics_path_.c_str());
    std::remove(trace_path_.c_str());
  }

  void CheckArtifacts(const char* context) {
    const std::string metrics = Slurp(metrics_path_);
    const std::string trace = Slurp(trace_path_);
    ASSERT_FALSE(metrics.empty()) << context;
    ASSERT_FALSE(trace.empty()) << context;
    EXPECT_TRUE(ValidateMetricsJson(metrics).ok()) << context;
    EXPECT_TRUE(ValidateChromeTraceJson(trace).ok()) << context;
    // The promised signals, by key, inside the parsed document.
    auto doc = ParseJson(metrics);
    ASSERT_TRUE(doc.ok()) << context;
    const JsonValue* hists = doc.value().Find("metrics")->Find(
        "histograms");
    ASSERT_NE(hists, nullptr) << context;
    const JsonValue* staleness = hists->Find("worker.staleness{worker=0}");
    ASSERT_NE(staleness, nullptr) << context;
    EXPECT_NE(staleness->Find("p50"), nullptr) << context;
    EXPECT_NE(staleness->Find("p99"), nullptr) << context;
    EXPECT_NE(hists->Find("ps.push_piece_us{partition=0}"), nullptr)
        << context;
    EXPECT_NE(hists->Find("ps.pull_piece_us{partition=0}"), nullptr)
        << context;
    const JsonValue* gauges =
        doc.value().Find("metrics")->Find("gauges");
    ASSERT_NE(gauges, nullptr) << context;
    EXPECT_NE(gauges->Find("worker.compute_seconds{worker=0}"), nullptr)
        << context;
    EXPECT_NE(gauges->Find("worker.wait_seconds{worker=0}"), nullptr)
        << context;
  }

  // Unique per test: ctest runs each test as its own process in
  // parallel, so a shared fixed name would race across processes.
  static std::string UniquePath(const char* suffix) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "obs_e2e_" + info->name() + suffix;
  }
  std::string metrics_path_ = UniquePath("_metrics.json");
  std::string trace_path_ = UniquePath("_trace.json");
};

TEST_F(ObsEndToEndTest, ThreadedRunEmitsGoldenArtifacts) {
  const Dataset data = SmallData();
  auto rule = MakeConsolidationRule("dyn");
  auto loss = MakeLoss("logistic");
  FixedRate sched(0.3);

  RunReporterOptions opts;
  opts.metrics_out = metrics_path_;
  opts.trace_out = trace_path_;
  opts.report_every = 2;
  opts.run_info = {{"command", "test.threaded"}};
  RunReporter reporter(opts);

  ThreadedTrainerOptions topts;
  topts.num_workers = 3;
  topts.num_servers = 2;
  topts.max_clocks = 6;
  topts.eval_sample = 200;
  int epochs_seen = 0;
  topts.on_epoch = [&](int epoch) {
    ++epochs_seen;
    reporter.OnEpoch(epoch);
  };
  const ThreadedTrainResult r =
      TrainThreaded(data, *loss, sched, *rule, topts);
  EXPECT_EQ(epochs_seen, 6);
  ASSERT_EQ(r.worker_breakdown.size(), 3u);
  EXPECT_EQ(r.worker_breakdown[0].clocks_completed, 6);
  EXPECT_GT(r.worker_breakdown[0].compute_seconds, 0.0);
  ASSERT_TRUE(reporter.WriteFinal().ok());
  CheckArtifacts("threaded");
}

TEST_F(ObsEndToEndTest, SimulatedRunEmitsGoldenArtifactsInVirtualTime) {
  const Dataset data = SmallData();
  auto rule = MakeConsolidationRule("dyn");
  auto loss = MakeLoss("logistic");
  FixedRate sched(1.0);

  RunReporterOptions opts;
  opts.metrics_out = metrics_path_;
  opts.trace_out = trace_path_;
  opts.run_info = {{"command", "test.sim"}};
  RunReporter reporter(opts);

  SimOptions sopts;
  sopts.max_clocks = 8;
  sopts.stop_on_convergence = false;
  sopts.eval_sample = 200;
  int epochs_seen = 0;
  sopts.on_epoch = [&](int epoch) {
    ++epochs_seen;
    reporter.OnEpoch(epoch);
  };
  const ClusterConfig cluster =
      ClusterConfig::WithStragglers(4, 2, 2.0, 0.25);
  const SimResult r =
      RunSimulation(data, cluster, *rule, sched, *loss, sopts);
  EXPECT_EQ(epochs_seen, 8);
  ASSERT_EQ(r.worker_breakdown.size(), 4u);
  ASSERT_TRUE(reporter.WriteFinal().ok());
  CheckArtifacts("simulated");

  // Virtual-time events are tagged pid 1 so they sit on their own
  // Perfetto track group, distinct from wall-clock (pid 0) events.
  auto doc = ParseJson(Slurp(trace_path_));
  ASSERT_TRUE(doc.ok());
  const JsonValue* events = doc.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_sim_compute = false;
  for (const JsonValue& ev : events->array) {
    const JsonValue* name = ev.Find("name");
    const JsonValue* pid = ev.Find("pid");
    if (name != nullptr && pid != nullptr &&
        name->string_value == "worker.compute" &&
        pid->number_value == 1.0) {
      saw_sim_compute = true;
      const JsonValue* dur = ev.Find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GT(dur->number_value, 0.0);
    }
  }
  EXPECT_TRUE(saw_sim_compute);
}

TEST_F(ObsEndToEndTest, DistributedRunCarriesRpcCountersAndBreakdown) {
  const Dataset data = SmallData();
  auto rule = MakeConsolidationRule("dyn");
  auto loss = MakeLoss("logistic");
  FixedRate sched(0.3);

  DistributedTrainerOptions dopts;
  dopts.num_workers = 2;
  dopts.num_servers = 2;
  dopts.max_clocks = 4;
  dopts.eval_sample = 200;
  int epochs_seen = 0;
  dopts.on_epoch = [&](int) { ++epochs_seen; };
  auto result = TrainDistributed(data, *loss, sched, *rule, dopts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(epochs_seen, 4);
  ASSERT_EQ(result.value().worker_breakdown.size(), 2u);
  EXPECT_GT(result.value().worker_breakdown[0].compute_seconds, 0.0);
  EXPECT_GT(result.value().worker_breakdown[0].comm_seconds, 0.0);
  // The bus pushed its delivery/fault counters into the global registry.
  EXPECT_GT(GlobalMetrics().counter("bus.delivered")->value(), 0);
  const std::string json = GlobalMetrics().JsonSnapshot();
  EXPECT_NE(json.find("bus.fault.dropped_requests"), std::string::npos);
  EXPECT_NE(json.find("rpc.client_retries"), std::string::npos);
  EXPECT_NE(json.find("rpc.handle_us{op=push}"), std::string::npos);
}

TEST_F(ObsEndToEndTest, LossyKillRunStitchesAllFourArtifacts) {
  // The issue's acceptance scenario: a lossy bus plus a crash-stopped
  // worker must yield (a) one Chrome trace whose client bus.rpc span
  // flow-links to the server's rpc.handle span, (b) a valid
  // timeseries.json with per-window worker signals, and (c) a
  // flightrec.json whose kill → suspect → evict → reassign events
  // appear in causal (seq) order.
  SyntheticConfig cfg;
  cfg.num_examples = 400;
  cfg.num_features = 150;
  cfg.avg_nnz = 8;
  cfg.seed = 51;
  const Dataset data = GenerateSynthetic(cfg);
  auto rule = MakeConsolidationRule("dyn");
  auto loss = MakeLoss("logistic");
  FixedRate sched(0.5);

  const std::string timeseries_path = UniquePath("_timeseries.json");
  const std::string flightrec_path = UniquePath("_flightrec.json");

  RunReporterOptions opts;
  opts.metrics_out = metrics_path_;
  opts.trace_out = trace_path_;
  opts.timeseries_out = timeseries_path;
  opts.flightrec_out = flightrec_path;
  opts.run_info = {{"command", "test.lossy_kill"}};
  RunReporter reporter(opts);

  FlightRecorder::Global().Clear();
  FlightRecorder::Global().Start(4096);

  DistributedTrainerOptions dopts;
  dopts.num_workers = 4;
  dopts.num_servers = 2;
  dopts.max_clocks = 10;
  dopts.eval_sample = 400;
  dopts.sync = SyncPolicy::Ssp(3);
  dopts.fault_plan = FaultPlan::DropEverywhere(0.05, 77);
  dopts.fault_plan.fault_worker = 2;
  dopts.fault_plan.kill_at_clock = 3;
  dopts.heartbeat_timeout = 2.0;
  dopts.rpc_retry.timeout = std::chrono::milliseconds(10);
  dopts.rpc_retry.max_attempts = 40;
  dopts.rpc_retry.initial_backoff = std::chrono::microseconds(100);
  dopts.on_epoch = [&](int epoch) { reporter.OnEpoch(epoch); };

  auto result = TrainDistributed(data, *loss, sched, *rule, dopts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().evicted_workers.size(), 1u);
  EXPECT_EQ(result.value().evicted_workers[0], 2);
  ASSERT_TRUE(reporter.WriteFinal().ok());
  FlightRecorder::Global().Stop();

  // (a) Causal trace: at least one flow id appears on both a client
  // "s" half and a server "f" half — the cross-process stitch.
  const std::string trace_text = Slurp(trace_path_);
  ASSERT_TRUE(ValidateChromeTraceJson(trace_text).ok()) << trace_text;
  auto trace_doc = ParseJson(trace_text);
  ASSERT_TRUE(trace_doc.ok());
  std::set<std::string> start_ids, finish_ids;
  for (const JsonValue& ev :
       trace_doc.value().Find("traceEvents")->array) {
    const JsonValue* ph = ev.Find("ph");
    const JsonValue* id = ev.Find("id");
    if (ph == nullptr || id == nullptr) continue;
    if (ph->string_value == "s") start_ids.insert(id->string_value);
    if (ph->string_value == "f") finish_ids.insert(id->string_value);
  }
  bool linked = false;
  for (const std::string& id : start_ids) {
    if (finish_ids.count(id) != 0) linked = true;
  }
  EXPECT_TRUE(linked) << "no client->server flow link: " << start_ids.size()
                      << " starts, " << finish_ids.size() << " finishes";

  // (b) Windowed time series: one window per worker-0 clock plus the
  // final flush window, carrying per-worker wait histograms.
  const std::string ts_text = Slurp(timeseries_path);
  ASSERT_TRUE(ValidateTimeSeriesJson(ts_text).ok()) << ts_text;
  auto ts_doc = ParseJson(ts_text);
  ASSERT_TRUE(ts_doc.ok());
  const auto& windows = ts_doc.value().Find("windows")->array;
  ASSERT_GE(windows.size(), 3u);
  EXPECT_DOUBLE_EQ(windows.back().Find("epoch")->number_value, -1.0);
  bool saw_wait = false;
  for (const JsonValue& w : windows) {
    for (const auto& [key, value] : w.Find("histograms")->object) {
      if (key.rfind("worker.wait_us{worker=", 0) == 0) saw_wait = true;
    }
  }
  EXPECT_TRUE(saw_wait) << ts_text;

  // (c) Flight record: the postmortem sequence in causal order.
  const std::string fr_text = Slurp(flightrec_path);
  ASSERT_TRUE(ValidateFlightRecJson(fr_text).ok()) << fr_text;
  auto fr_doc = ParseJson(fr_text);
  ASSERT_TRUE(fr_doc.ok());
  double kill_seq = -1, suspect_seq = -1, evict_seq = -1,
         failover_seq = -1;
  for (const JsonValue& ev : fr_doc.value().Find("events")->array) {
    const std::string& kind = ev.Find("kind")->string_value;
    const double seq = ev.Find("seq")->number_value;
    if (kind == "fault.kill" && kill_seq < 0) kill_seq = seq;
    if (kind == "worker_suspected" && suspect_seq < 0) suspect_seq = seq;
    if (kind == "worker_evicted" && evict_seq < 0) evict_seq = seq;
    if (kind == "shard_failover" && failover_seq < 0) failover_seq = seq;
  }
  ASSERT_GE(kill_seq, 0.0) << fr_text;
  ASSERT_GE(suspect_seq, 0.0) << fr_text;
  ASSERT_GE(evict_seq, 0.0) << fr_text;
  ASSERT_GE(failover_seq, 0.0) << fr_text;
  EXPECT_LT(kill_seq, suspect_seq);
  EXPECT_LT(suspect_seq, evict_seq);
  EXPECT_LT(evict_seq, failover_seq);

  FlightRecorder::Global().Clear();
  std::remove(timeseries_path.c_str());
  std::remove(flightrec_path.c_str());
}

}  // namespace
}  // namespace hetps
