// Prometheus exposition conformance: label-value escaping per the text
// format spec (backslash, double-quote, newline are the three escapes),
// OpenMetrics-style histogram exemplars, and the kMetricsScrape delta
// path (scrape N minus scrape N−1).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace hetps {
namespace {

TEST(MetricsPromTest, EscapesAdversarialLabelValues) {
  MetricsRegistry registry;
  // One of each escape-worthy character, plus an innocent bystander.
  registry.counter("rpc.err", {{"msg", "back\\slash"}})->Increment();
  registry.counter("rpc.err", {{"msg", "say \"hi\""}})->Increment(2);
  registry.counter("rpc.err", {{"msg", "line1\nline2"}})->Increment(3);
  registry.counter("rpc.err", {{"msg", "plain"}})->Increment(4);
  const std::string text = registry.PrometheusText();

  EXPECT_NE(text.find("rpc_err{msg=\"back\\\\slash\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rpc_err{msg=\"say \\\"hi\\\"\"} 2"),
            std::string::npos)
      << text;
  // The newline must be the two characters '\' 'n', never a raw line
  // break mid-value (which would corrupt the line-oriented format).
  EXPECT_NE(text.find("rpc_err{msg=\"line1\\nline2\"} 3"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("line1\nline2"), std::string::npos) << text;
  EXPECT_NE(text.find("rpc_err{msg=\"plain\"} 4"), std::string::npos)
      << text;
}

TEST(MetricsPromTest, EveryLineIsWellFormedDespiteHostileValues) {
  MetricsRegistry registry;
  registry.gauge("g", {{"v", "a\nb\"c\\d"}})->Set(1.5);
  registry.histogram("h", {{"v", "x\ny"}})->RecordInt(7);
  const std::string text = registry.PrometheusText();
  // Line-oriented format: every non-comment line is `series value` (or
  // `series value # exemplar`); a leaked raw newline would leave a line
  // with no space separator.
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << "bad line: " << line;
    }
    pos = eol + 1;
  }
}

TEST(MetricsPromTest, HistogramExemplarRendersOnTailBucket) {
  BucketedHistogram::SetExemplarsEnabled(true);
  MetricsRegistry registry;
  HistogramMetric* h = registry.histogram("rpc.handle_us");
  for (int i = 0; i < 100; ++i) h->RecordInt(10, 7);
  h->RecordInt(50000, 4242);  // the tail sample whose trace we keep
  const std::string text = registry.PrometheusText();
  BucketedHistogram::SetExemplarsEnabled(false);

  const size_t pos = text.find("# {trace_id=\"4242\"} 50000");
  ASSERT_NE(pos, std::string::npos) << text;
  // The exemplar rides on a _bucket line of this family.
  const size_t line_start = text.rfind('\n', pos) + 1;
  EXPECT_EQ(text.compare(line_start, 23, "rpc_handle_us_bucket{le"), 0)
      << text.substr(line_start, 60);
}

TEST(MetricsPromTest, ExemplarsOffByDefaultAndWithoutTraceId) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.histogram("lat");
  h->RecordInt(999, 13);  // disabled: dropped
  EXPECT_TRUE(h->Exemplars().empty());

  BucketedHistogram::SetExemplarsEnabled(true);
  h->RecordInt(999, 0);  // no trace context: nothing to link
  EXPECT_TRUE(h->Exemplars().empty());
  h->RecordInt(999, 77);
  BucketedHistogram::SetExemplarsEnabled(false);
  ASSERT_EQ(h->Exemplars().size(), 1u);
  EXPECT_EQ(h->Exemplars()[0].trace_id, 77u);
  EXPECT_EQ(h->Exemplars()[0].value, 999);
}

TEST(MetricsPromTest, ExemplarSlotZeroTracksTheMaximum) {
  BucketedHistogram::SetExemplarsEnabled(true);
  BucketedHistogram h;
  h.RecordInt(100, 1);
  h.RecordInt(5000, 2);  // new max displaces slot 0
  h.RecordInt(60, 3);    // below the tail band: not retained
  BucketedHistogram::SetExemplarsEnabled(false);
  const std::vector<HistogramExemplar> ex = h.Exemplars();
  bool found_max = false;
  for (const HistogramExemplar& e : ex) {
    EXPECT_NE(e.trace_id, 3u);
    if (e.value == 5000 && e.trace_id == 2u) found_max = true;
  }
  EXPECT_TRUE(found_max);
}

TEST(MetricsPromTest, JsonSnapshotCarriesExemplars) {
  BucketedHistogram::SetExemplarsEnabled(true);
  MetricsRegistry registry;
  registry.histogram("rpc.handle_us")->RecordInt(1234, 99);
  const std::string json = registry.JsonSnapshot();
  BucketedHistogram::SetExemplarsEnabled(false);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* hist =
      parsed.value().Find("histograms")->Find("rpc.handle_us");
  ASSERT_NE(hist, nullptr);
  const JsonValue* exemplars = hist->Find("exemplars");
  ASSERT_NE(exemplars, nullptr);
  ASSERT_EQ(exemplars->array.size(), 1u);
  EXPECT_DOUBLE_EQ(exemplars->array[0].Find("trace_id")->number_value,
                   99.0);
  EXPECT_DOUBLE_EQ(exemplars->array[0].Find("value")->number_value,
                   1234.0);
}

TEST(MetricsPromTest, DeltaJsonReportsChangesSincePreviousScrape) {
  MetricsRegistry registry;
  registry.counter("pushes")->Increment(10);
  registry.gauge("mem")->Set(100.0);
  registry.histogram("lat")->RecordInt(5);
  const MetricsSnapshot first = registry.SnapshotValues();

  registry.counter("pushes")->Increment(7);
  registry.counter("fresh")->Increment(3);  // born between scrapes
  registry.gauge("mem")->Set(250.0);
  registry.histogram("lat")->RecordInt(9);
  const MetricsSnapshot second = registry.SnapshotValues();

  auto parsed = ParseJson(MetricsDeltaJson(first, second));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = parsed.value();
  // Counters and histograms are rates: cur − prev (absent prev = 0).
  EXPECT_DOUBLE_EQ(doc.Find("counters")->Find("pushes")->number_value,
                   7.0);
  EXPECT_DOUBLE_EQ(doc.Find("counters")->Find("fresh")->number_value,
                   3.0);
  const JsonValue* lat = doc.Find("histograms")->Find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->Find("count")->number_value, 1.0);
  EXPECT_DOUBLE_EQ(lat->Find("sum")->number_value, 9.0);
  // Gauges are levels, not rates: current value, never a difference.
  EXPECT_DOUBLE_EQ(doc.Find("gauges")->Find("mem")->number_value, 250.0);
}

TEST(MetricsPromTest, DeltaAgainstEmptyBaseIsTheFullScrape) {
  MetricsRegistry registry;
  registry.counter("pushes")->Increment(4);
  auto parsed = ParseJson(
      MetricsDeltaJson(MetricsSnapshot(), registry.SnapshotValues()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(
      parsed.value().Find("counters")->Find("pushes")->number_value, 4.0);
}

}  // namespace
}  // namespace hetps
