#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace hetps {
namespace {

TEST(BucketedHistogram, EmptyIsSane) {
  BucketedHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.5), 0.0);
}

TEST(BucketedHistogram, LinearRegionIsExact) {
  // Values below the linear cutoff land in unit-width buckets, so
  // quantiles are exact.
  BucketedHistogram h;
  for (int v = 0; v < BucketedHistogram::kLinearCutoff; ++v) {
    EXPECT_EQ(BucketedHistogram::BucketIndex(v), v) << v;
    EXPECT_EQ(BucketedHistogram::BucketLowerBound(v), v) << v;
  }
  for (int i = 0; i < 100; ++i) h.RecordInt(i % 10);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 9);
  EXPECT_NEAR(h.ValueAtQuantile(0.5), 4.5, 0.51);
}

TEST(BucketedHistogram, BucketBoundariesMonotone) {
  int prev = BucketedHistogram::BucketIndex(0);
  EXPECT_EQ(prev, 0);
  for (int64_t v = 1; v < (int64_t{1} << 40); v = v * 2 + 1) {
    const int idx = BucketedHistogram::BucketIndex(v);
    EXPECT_GE(idx, prev) << "v=" << v;
    EXPECT_LT(idx, BucketedHistogram::kNumBuckets) << "v=" << v;
    // The bucket's range contains the value.
    EXPECT_LE(BucketedHistogram::BucketLowerBound(idx), v);
    EXPECT_GT(BucketedHistogram::BucketUpperBound(idx), v);
    prev = idx;
  }
}

TEST(BucketedHistogram, RelativeErrorBound) {
  // Each octave has 16 sub-buckets, so the worst-case relative
  // quantile error (bucket midpoint vs. true value) is ~1/32 + eps.
  BucketedHistogram h;
  std::mt19937_64 rng(42);
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over [1, 1e9) — stresses every octave.
    const double u = std::uniform_real_distribution<double>(0, 9)(rng);
    const int64_t v = static_cast<int64_t>(std::pow(10.0, u));
    values.push_back(v);
    h.RecordInt(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const size_t rank = std::min(
        values.size() - 1,
        static_cast<size_t>(std::ceil(q * values.size())) - 1);
    const double exact = static_cast<double>(values[rank]);
    const double approx = h.ValueAtQuantile(q);
    EXPECT_NEAR(approx, exact, exact * 0.07 + 1.0)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(BucketedHistogram, MeanMinMaxSum) {
  BucketedHistogram h;
  h.Record(10.0);
  h.Record(20.0);
  h.Record(30.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 60.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 30);
}

TEST(BucketedHistogram, NegativeAndFractionalClamp) {
  BucketedHistogram h;
  h.Record(-5.0);   // clamped to 0
  h.Record(0.4);    // rounds to 0
  h.Record(0.6);    // rounds to 1
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1);
}

TEST(BucketedHistogram, Merge) {
  BucketedHistogram a, b;
  for (int i = 0; i < 100; ++i) a.RecordInt(10);
  for (int i = 0; i < 100; ++i) b.RecordInt(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.ValueAtQuantile(0.25), 10, 1.0);
  EXPECT_NEAR(a.ValueAtQuantile(0.75), 1000, 1000 * 0.07);
}

TEST(BucketedHistogram, Overflow) {
  BucketedHistogram h;
  h.RecordInt(int64_t{1} << 45);  // beyond kMaxExponent octaves
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.overflow_count(), 1);
  // Still counted in the top bucket so quantiles stay monotone.
  EXPECT_GT(h.ValueAtQuantile(0.5), 0.0);
}

TEST(BucketedHistogram, Reset) {
  BucketedHistogram h;
  h.RecordInt(7);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.99), 0.0);
}

TEST(BucketedHistogram, ConcurrentRecord) {
  BucketedHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.RecordInt((t + 1) * 100 + i % 50);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 449);
}

}  // namespace
}  // namespace hetps
