#include "obs/run_reporter.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hetps {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

void PopulateLikeARun(MetricsRegistry* reg) {
  reg->counter("ps.push.count")->Increment(12);
  reg->counter("ps.push.bytes")->Increment(4096);
  reg->gauge("ps.blocked_workers")->Set(1);
  reg->distribution("worker.iter_seconds")->Record(0.25);
  for (int i = 0; i < 100; ++i) {
    reg->histogram("ps.push_piece_us", {{"partition", "0"}})
        ->RecordInt(100 + i);
    reg->histogram("worker.staleness", {{"worker", "0"}})->RecordInt(i % 4);
  }
}

TEST(RunReporter, GoldenMetricsSchema) {
  MetricsRegistry reg;
  PopulateLikeARun(&reg);
  TraceRecorder trace;
  RunReporterOptions opt;
  opt.run_info = {{"rule", "dynsgd"}, {"workers", "4"}};
  RunReporter reporter(opt, &reg, &trace);

  const std::string text = reporter.MetricsJsonString(/*epoch=*/3,
                                                      /*final_snapshot=*/false);
  ASSERT_TRUE(ValidateMetricsJson(text).ok())
      << ValidateMetricsJson(text).ToString() << "\n"
      << text;

  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
  const JsonValue& d = doc.value();
  EXPECT_EQ(d.Find("schema")->string_value, "hetps.metrics.v1");
  EXPECT_DOUBLE_EQ(d.Find("epoch")->number_value, 3.0);
  EXPECT_FALSE(d.Find("final")->bool_value);
  EXPECT_EQ(d.Find("run")->Find("rule")->string_value, "dynsgd");

  const JsonValue* metrics = d.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(
      metrics->Find("counters")->Find("ps.push.count")->number_value, 12.0);
  EXPECT_DOUBLE_EQ(
      metrics->Find("gauges")->Find("ps.blocked_workers")->number_value, 1.0);
  const JsonValue* hist =
      metrics->Find("histograms")->Find("worker.staleness{worker=0}");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number_value, 100.0);
  // Staleness 0..3 uniformly: p50 in the linear (exact) region.
  EXPECT_LE(hist->Find("p50")->number_value, 2.0);
  EXPECT_GE(hist->Find("p99")->number_value, 3.0);
  const JsonValue* dist =
      metrics->Find("distributions")->Find("worker.iter_seconds");
  ASSERT_NE(dist, nullptr);
  for (const char* f : {"count", "mean", "min", "max", "stddev"}) {
    EXPECT_NE(dist->Find(f), nullptr) << f;
  }
}

TEST(RunReporter, SourcesSection) {
  MetricsRegistry reg, per_instance;
  per_instance.counter("rpc.push")->Increment(2);
  TraceRecorder trace;
  RunReporter reporter(RunReporterOptions{}, &reg, &trace);
  reporter.AddSource("ps0", &per_instance);
  const std::string text = reporter.MetricsJsonString(-1, true);
  ASSERT_TRUE(ValidateMetricsJson(text).ok()) << text;
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
  const JsonValue* src = doc.value().Find("sources")->Find("ps0");
  ASSERT_NE(src, nullptr);
  EXPECT_DOUBLE_EQ(src->Find("counters")->Find("rpc.push")->number_value,
                   2.0);
}

TEST(RunReporter, WritesFilesAndEpochCadence) {
  MetricsRegistry reg;
  reg.counter("c")->Increment();
  TraceRecorder trace;
  trace.Start();
  trace.AppendInstant("mark");
  trace.Stop();

  RunReporterOptions opt;
  opt.metrics_out = TempPath("reporter_metrics.json");
  opt.trace_out = TempPath("reporter_trace.json");
  opt.report_every = 2;
  RunReporter reporter(opt, &reg, &trace);

  std::remove(opt.metrics_out.c_str());
  reporter.OnEpoch(1);  // 1 % 2 != 0 → no write
  EXPECT_FALSE(std::ifstream(opt.metrics_out).good());
  reporter.OnEpoch(2);  // mid-run snapshot
  {
    const std::string text = ReadFileOrDie(opt.metrics_out);
    auto doc = ParseJson(text);
    ASSERT_TRUE(doc.ok());
    EXPECT_DOUBLE_EQ(doc.value().Find("epoch")->number_value, 2.0);
    EXPECT_FALSE(doc.value().Find("final")->bool_value);
  }
  ASSERT_TRUE(reporter.WriteFinal().ok());
  const std::string text = ReadFileOrDie(opt.metrics_out);
  ASSERT_TRUE(ValidateMetricsJson(text).ok());
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc.value().Find("final")->bool_value);
  const std::string trace_text = ReadFileOrDie(opt.trace_out);
  EXPECT_TRUE(ValidateChromeTraceJson(trace_text).ok()) << trace_text;
  std::remove(opt.metrics_out.c_str());
  std::remove(opt.trace_out.c_str());
}

TEST(RunReporter, WriteToBadPathFails) {
  MetricsRegistry reg;
  TraceRecorder trace;
  RunReporterOptions opt;
  opt.metrics_out = "/nonexistent-dir-hetps/metrics.json";
  RunReporter reporter(opt, &reg, &trace);
  EXPECT_FALSE(reporter.WriteFinal().ok());
}

TEST(ValidateMetricsJsonTest, RejectsMalformed) {
  EXPECT_FALSE(ValidateMetricsJson("not json").ok());
  EXPECT_FALSE(ValidateMetricsJson("{}").ok());
  EXPECT_FALSE(
      ValidateMetricsJson("{\"schema\":\"wrong\",\"epoch\":0}").ok());
  // Right schema tag but missing metric sections.
  EXPECT_FALSE(ValidateMetricsJson(
                   "{\"schema\":\"hetps.metrics.v1\",\"epoch\":0,"
                   "\"final\":true,\"metrics\":{}}")
                   .ok());
  // Histogram missing quantile fields.
  EXPECT_FALSE(
      ValidateMetricsJson(
          "{\"schema\":\"hetps.metrics.v1\",\"epoch\":0,\"final\":true,"
          "\"metrics\":{\"counters\":{},\"gauges\":{},"
          "\"distributions\":{},\"histograms\":{\"h\":{\"count\":1}}}}")
          .ok());
}

TEST(ValidateChromeTraceJsonTest, RejectsMalformed) {
  EXPECT_FALSE(ValidateChromeTraceJson("[]").ok());
  EXPECT_FALSE(ValidateChromeTraceJson("{\"traceEvents\":{}}").ok());
  EXPECT_FALSE(
      ValidateChromeTraceJson("{\"traceEvents\":[{\"ph\":\"X\"}]}").ok());
  // Complete span missing "dur".
  EXPECT_FALSE(ValidateChromeTraceJson(
                   "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\","
                   "\"ts\":0,\"pid\":0,\"tid\":0}]}")
                   .ok());
  EXPECT_TRUE(ValidateChromeTraceJson(
                  "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\","
                  "\"ts\":0,\"pid\":0,\"tid\":0,\"dur\":5}]}")
                  .ok());
}

TEST(ValidateChromeTraceJsonTest, FlowEventsRequireAnId) {
  // A flow half without an id renders as a dangling arrow — reject.
  EXPECT_FALSE(ValidateChromeTraceJson(
                   "{\"traceEvents\":[{\"name\":\"rpc\",\"ph\":\"s\","
                   "\"ts\":1,\"pid\":0,\"tid\":0}]}")
                   .ok());
  EXPECT_FALSE(ValidateChromeTraceJson(
                   "{\"traceEvents\":[{\"name\":\"rpc\",\"ph\":\"f\","
                   "\"ts\":1,\"pid\":0,\"tid\":0,\"id\":\"\"}]}")
                   .ok());
  EXPECT_TRUE(ValidateChromeTraceJson(
                  "{\"traceEvents\":["
                  "{\"name\":\"rpc\",\"ph\":\"s\",\"ts\":1,\"pid\":0,"
                  "\"tid\":0,\"id\":\"7\"},"
                  "{\"name\":\"rpc\",\"ph\":\"f\",\"ts\":2,\"pid\":1,"
                  "\"tid\":0,\"id\":\"7\",\"bp\":\"e\"}]}")
                  .ok());
}

TEST(ValidateChromeTraceJsonTest, TimestampOrdering) {
  // Data events must be non-decreasing in ts (the writer merges the
  // per-thread rings sorted).
  EXPECT_FALSE(ValidateChromeTraceJson(
                   "{\"traceEvents\":["
                   "{\"name\":\"a\",\"ph\":\"i\",\"ts\":10,\"pid\":0,"
                   "\"tid\":0},"
                   "{\"name\":\"b\",\"ph\":\"i\",\"ts\":5,\"pid\":0,"
                   "\"tid\":0}]}")
                   .ok());
  // Metadata events carry nominal timestamps and are exempt.
  EXPECT_TRUE(ValidateChromeTraceJson(
                  "{\"traceEvents\":["
                  "{\"name\":\"a\",\"ph\":\"i\",\"ts\":10,\"pid\":0,"
                  "\"tid\":0},"
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,"
                  "\"pid\":0,\"tid\":0},"
                  "{\"name\":\"b\",\"ph\":\"i\",\"ts\":11,\"pid\":0,"
                  "\"tid\":0}]}")
                  .ok());
}

TEST(RunReporter, WritesTimeSeriesAndFlightRecorder) {
  MetricsRegistry reg;
  Counter* pushes = reg.counter("ps.push.count");
  TraceRecorder trace;

  RunReporterOptions opt;
  opt.timeseries_out = TempPath("reporter_timeseries.json");
  opt.flightrec_out = TempPath("reporter_flightrec.json");
  RunReporter reporter(opt, &reg, &trace);
  ASSERT_NE(reporter.timeseries(), nullptr);

  FlightRecorder::Global().Clear();
  FlightRecorder::Global().Start(64);
  FlightRecorder::Global().Record("worker_evicted", 2, 5);

  pushes->Increment(3);
  reporter.OnEpoch(1);
  pushes->Increment(4);
  reporter.OnEpoch(2);
  pushes->Increment(1);
  ASSERT_TRUE(reporter.WriteFinal().ok());
  FlightRecorder::Global().Stop();

  const std::string ts_text = ReadFileOrDie(opt.timeseries_out);
  ASSERT_TRUE(ValidateTimeSeriesJson(ts_text).ok()) << ts_text;
  auto ts_doc = ParseJson(ts_text);
  ASSERT_TRUE(ts_doc.ok());
  const auto& windows = ts_doc.value().Find("windows")->array;
  // Two epoch windows plus the final flush window (epoch -1).
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_DOUBLE_EQ(windows[2].Find("epoch")->number_value, -1.0);
  EXPECT_DOUBLE_EQ(
      windows[1].Find("counters")->Find("ps.push.count")->number_value,
      4.0);

  const std::string fr_text = ReadFileOrDie(opt.flightrec_out);
  ASSERT_TRUE(ValidateFlightRecJson(fr_text).ok()) << fr_text;
  EXPECT_NE(fr_text.find("worker_evicted"), std::string::npos);

  FlightRecorder::Global().Clear();
  std::remove(opt.timeseries_out.c_str());
  std::remove(opt.flightrec_out.c_str());
}

TEST(RunReporter, ExternalTimeSeriesClockSkipsInternalWindows) {
  MetricsRegistry reg;
  Counter* c = reg.counter("c");
  TraceRecorder trace;
  RunReporterOptions opt;
  opt.timeseries_out = TempPath("reporter_ts_external.json");
  RunReporter reporter(opt, &reg, &trace);
  reporter.UseExternalTimeSeriesClock();

  c->Increment();
  reporter.OnEpoch(1);  // must NOT close a window
  reporter.timeseries()->SnapshotAt(/*epoch=*/1, /*ts_us=*/400);
  ASSERT_TRUE(reporter.WriteFinal().ok());  // must NOT add a flush window

  auto doc = ParseJson(ReadFileOrDie(opt.timeseries_out));
  ASSERT_TRUE(doc.ok());
  const auto& windows = doc.value().Find("windows")->array;
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].Find("ts_us")->number_value, 400.0);
  std::remove(opt.timeseries_out.c_str());
}

}  // namespace
}  // namespace hetps
