#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/run_reporter.h"

namespace hetps {
namespace {

TraceOptions SmallBuffers() {
  TraceOptions o;
  o.buffer_kb_per_thread = 1;  // tiny ring to exercise wraparound
  return o;
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder rec;
  {
    // Spans constructed while disabled never capture anything.
    rec.Stop();
    TraceEvent ev;
    ev.name = "x";
    rec.AppendExplicit(ev);  // no Start() → no buffers → dropped
  }
  EXPECT_EQ(rec.buffered_count(), 0u);
}

TEST(TraceRecorder, RecordsSpansAndInstants) {
  TraceRecorder rec;
  rec.Start();
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = t0 + std::chrono::microseconds(250);
  rec.AppendComplete("span.a", t0, t1);
  rec.AppendInstant("mark.b");
  EXPECT_EQ(rec.buffered_count(), 2u);
  EXPECT_EQ(rec.appended_count(), 2);
  EXPECT_EQ(rec.dropped_count(), 0);

  const std::string json = rec.ToJsonString();
  ASSERT_TRUE(ValidateChromeTraceJson(json).ok()) << json;
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok());
  const JsonValue* events = doc.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  EXPECT_EQ(events->array[0].Find("name")->string_value, "span.a");
  EXPECT_EQ(events->array[0].Find("ph")->string_value, "X");
  EXPECT_DOUBLE_EQ(events->array[0].Find("dur")->number_value, 250.0);
  EXPECT_EQ(events->array[1].Find("ph")->string_value, "i");
}

TEST(TraceRecorder, ArgsSerialized) {
  TraceRecorder rec;
  rec.Start();
  TraceEvent ev;
  ev.name = "with.args";
  ev.phase = 'X';
  ev.ts_us = 10;
  ev.dur_us = 5;
  ev.num_args = 2;
  ev.arg_key[0] = "worker";
  ev.arg_val[0] = 3;
  ev.arg_key[1] = "bytes";
  ev.arg_val[1] = 4096;
  rec.AppendExplicit(ev);
  auto doc = ParseJson(rec.ToJsonString());
  ASSERT_TRUE(doc.ok());
  const JsonValue& e = doc.value().Find("traceEvents")->array[0];
  const JsonValue* args = e.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->Find("worker")->number_value, 3.0);
  EXPECT_DOUBLE_EQ(args->Find("bytes")->number_value, 4096.0);
}

TEST(TraceRecorder, RingWraparoundKeepsNewest) {
  TraceRecorder rec;
  rec.Start(SmallBuffers());
  // Mirrors Start(): capacity is clamped to at least 16 events.
  const size_t cap = std::max<size_t>(16, 1 * 1024 / sizeof(TraceEvent));
  const int total = static_cast<int>(cap) + 10;
  for (int i = 0; i < total; ++i) {
    TraceEvent ev;
    ev.name = "e";
    ev.phase = 'i';
    ev.ts_us = i;
    rec.AppendExplicit(ev);
  }
  EXPECT_EQ(rec.appended_count(), total);
  EXPECT_EQ(rec.buffered_count(), cap);
  EXPECT_EQ(rec.dropped_count(), 10);
  // The surviving events are the newest `cap` ones, oldest-first.
  auto doc = ParseJson(rec.ToJsonString());
  ASSERT_TRUE(doc.ok());
  const auto& events = doc.value().Find("traceEvents")->array;
  ASSERT_EQ(events.size(), cap);
  EXPECT_DOUBLE_EQ(events.front().Find("ts")->number_value, 10.0);
  EXPECT_DOUBLE_EQ(events.back().Find("ts")->number_value, total - 1.0);
}

TEST(TraceRecorder, MultiThreadedAppendIsClean) {
  // Exercised under TSan in CI: concurrent appends + a concurrent
  // snapshot must be race-free.
  TraceRecorder rec;
  rec.Start();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceEvent ev;
        ev.name = "mt";
        ev.phase = 'i';
        ev.ts_us = i;
        rec.AppendExplicit(ev);
      }
    });
  }
  // Snapshot while appends are in flight.
  for (int s = 0; s < 5; ++s) {
    std::string json = rec.ToJsonString();
    EXPECT_TRUE(ValidateChromeTraceJson(json).ok());
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.appended_count(), kThreads * kPerThread);
  EXPECT_TRUE(ValidateChromeTraceJson(rec.ToJsonString()).ok());
}

TEST(TraceRecorder, ThreadsGetDistinctTids) {
  TraceRecorder rec;
  rec.Start();
  auto record_one = [&rec] {
    TraceEvent ev;
    ev.name = "tid";
    ev.phase = 'i';
    rec.AppendExplicit(ev);
  };
  std::thread a(record_one), b(record_one);
  a.join();
  b.join();
  auto doc = ParseJson(rec.ToJsonString());
  ASSERT_TRUE(doc.ok());
  const auto& events = doc.value().Find("traceEvents")->array;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].Find("tid")->number_value,
            events[1].Find("tid")->number_value);
}

TEST(TraceRecorder, ClearDiscardsEvents) {
  TraceRecorder rec;
  rec.Start();
  rec.AppendInstant("x");
  rec.Clear();
  EXPECT_EQ(rec.buffered_count(), 0u);
  rec.AppendInstant("y");  // buffer stays registered and usable
  EXPECT_EQ(rec.buffered_count(), 1u);
}

TEST(TraceSpanTest, MacroRecordsWhenEnabled) {
  // Global() recorder: enable briefly, use the macros, disable again.
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Start();
  {
    HETPS_TRACE_SPAN("test.span");
    HETPS_TRACE_SPAN2("test.span2", "k", 1, "v", 2.5);
    HETPS_TRACE_INSTANT1("test.instant", "n", 7);
  }
  TraceRecorder::Global().Stop();
  const std::string json = TraceRecorder::Global().ToJsonString();
  EXPECT_NE(json.find("test.span"), std::string::npos);
  EXPECT_NE(json.find("test.span2"), std::string::npos);
  EXPECT_NE(json.find("test.instant"), std::string::npos);
  EXPECT_TRUE(ValidateChromeTraceJson(json).ok());
  TraceRecorder::Global().Clear();
}

TEST(TraceSpanTest, DisabledSpanIsInactive) {
  TraceRecorder::Global().Stop();
  TraceSpan span("never.recorded");
  EXPECT_FALSE(span.active());
  span.AddArg("k", 1.0);  // must be a no-op, not a crash
}

}  // namespace
}  // namespace hetps
