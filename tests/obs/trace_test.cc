#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/run_reporter.h"

namespace hetps {
namespace {

TraceOptions SmallBuffers() {
  TraceOptions o;
  o.buffer_kb_per_thread = 1;  // tiny ring to exercise wraparound
  return o;
}

/// Start() injects process_name/thread_name metadata ("M") events;
/// most assertions care about the data events only.
std::vector<const JsonValue*> DataEvents(const JsonValue& doc) {
  std::vector<const JsonValue*> out;
  for (const JsonValue& ev : doc.Find("traceEvents")->array) {
    if (ev.Find("ph")->string_value != "M") out.push_back(&ev);
  }
  return out;
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder rec;
  {
    // Spans constructed while disabled never capture anything.
    rec.Stop();
    TraceEvent ev;
    ev.name = "x";
    rec.AppendExplicit(ev);  // no Start() → no buffers → dropped
  }
  EXPECT_EQ(rec.buffered_count(), 0u);
}

TEST(TraceRecorder, RecordsSpansAndInstants) {
  TraceRecorder rec;
  rec.Start();
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = t0 + std::chrono::microseconds(250);
  rec.AppendComplete("span.a", t0, t1);
  rec.AppendInstant("mark.b");
  EXPECT_EQ(rec.buffered_count(), 2u);
  EXPECT_EQ(rec.appended_count(), 2);
  EXPECT_EQ(rec.dropped_count(), 0);

  const std::string json = rec.ToJsonString();
  ASSERT_TRUE(ValidateChromeTraceJson(json).ok()) << json;
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok());
  const auto events = DataEvents(doc.value());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0]->Find("name")->string_value, "span.a");
  EXPECT_EQ(events[0]->Find("ph")->string_value, "X");
  EXPECT_DOUBLE_EQ(events[0]->Find("dur")->number_value, 250.0);
  EXPECT_EQ(events[1]->Find("ph")->string_value, "i");
}

TEST(TraceRecorder, ArgsSerialized) {
  TraceRecorder rec;
  rec.Start();
  TraceEvent ev;
  ev.name = "with.args";
  ev.phase = 'X';
  ev.ts_us = 10;
  ev.dur_us = 5;
  ev.num_args = 2;
  ev.arg_key[0] = "worker";
  ev.arg_val[0] = 3;
  ev.arg_key[1] = "bytes";
  ev.arg_val[1] = 4096;
  rec.AppendExplicit(ev);
  auto doc = ParseJson(rec.ToJsonString());
  ASSERT_TRUE(doc.ok());
  const auto events = DataEvents(doc.value());
  ASSERT_EQ(events.size(), 1u);
  const JsonValue& e = *events[0];
  const JsonValue* args = e.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->Find("worker")->number_value, 3.0);
  EXPECT_DOUBLE_EQ(args->Find("bytes")->number_value, 4096.0);
}

TEST(TraceRecorder, RingWraparoundKeepsNewest) {
  TraceRecorder rec;
  rec.Start(SmallBuffers());
  // Mirrors Start(): capacity is clamped to at least 16 events.
  const size_t cap = std::max<size_t>(16, 1 * 1024 / sizeof(TraceEvent));
  const int total = static_cast<int>(cap) + 10;
  for (int i = 0; i < total; ++i) {
    TraceEvent ev;
    ev.name = "e";
    ev.phase = 'i';
    ev.ts_us = i;
    rec.AppendExplicit(ev);
  }
  EXPECT_EQ(rec.appended_count(), total);
  EXPECT_EQ(rec.buffered_count(), cap);
  EXPECT_EQ(rec.dropped_count(), 10);
  // The surviving events are the newest `cap` ones, oldest-first.
  auto doc = ParseJson(rec.ToJsonString());
  ASSERT_TRUE(doc.ok());
  const auto events = DataEvents(doc.value());
  ASSERT_EQ(events.size(), cap);
  EXPECT_DOUBLE_EQ(events.front()->Find("ts")->number_value, 10.0);
  EXPECT_DOUBLE_EQ(events.back()->Find("ts")->number_value, total - 1.0);
}

TEST(TraceRecorder, MultiThreadedAppendIsClean) {
  // Exercised under TSan in CI: concurrent appends + a concurrent
  // snapshot must be race-free.
  TraceRecorder rec;
  rec.Start();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceEvent ev;
        ev.name = "mt";
        ev.phase = 'i';
        ev.ts_us = i;
        rec.AppendExplicit(ev);
      }
    });
  }
  // Snapshot while appends are in flight.
  for (int s = 0; s < 5; ++s) {
    std::string json = rec.ToJsonString();
    EXPECT_TRUE(ValidateChromeTraceJson(json).ok());
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.appended_count(), kThreads * kPerThread);
  EXPECT_TRUE(ValidateChromeTraceJson(rec.ToJsonString()).ok());
}

TEST(TraceRecorder, ThreadsGetDistinctTids) {
  TraceRecorder rec;
  rec.Start();
  auto record_one = [&rec] {
    TraceEvent ev;
    ev.name = "tid";
    ev.phase = 'i';
    rec.AppendExplicit(ev);
  };
  std::thread a(record_one), b(record_one);
  a.join();
  b.join();
  auto doc = ParseJson(rec.ToJsonString());
  ASSERT_TRUE(doc.ok());
  const auto events = DataEvents(doc.value());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0]->Find("tid")->number_value,
            events[1]->Find("tid")->number_value);
}

TEST(TraceRecorder, ClearDiscardsEvents) {
  TraceRecorder rec;
  rec.Start();
  rec.AppendInstant("x");
  rec.Clear();
  EXPECT_EQ(rec.buffered_count(), 0u);
  rec.AppendInstant("y");  // buffer stays registered and usable
  EXPECT_EQ(rec.buffered_count(), 1u);
}

TEST(TraceSpanTest, MacroRecordsWhenEnabled) {
  // Global() recorder: enable briefly, use the macros, disable again.
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Start();
  {
    HETPS_TRACE_SPAN("test.span");
    HETPS_TRACE_SPAN2("test.span2", "k", 1, "v", 2.5);
    HETPS_TRACE_INSTANT1("test.instant", "n", 7);
  }
  TraceRecorder::Global().Stop();
  const std::string json = TraceRecorder::Global().ToJsonString();
  EXPECT_NE(json.find("test.span"), std::string::npos);
  EXPECT_NE(json.find("test.span2"), std::string::npos);
  EXPECT_NE(json.find("test.instant"), std::string::npos);
  EXPECT_TRUE(ValidateChromeTraceJson(json).ok());
  TraceRecorder::Global().Clear();
}

TEST(TraceSpanTest, DisabledSpanIsInactive) {
  TraceRecorder::Global().Stop();
  TraceSpan span("never.recorded");
  EXPECT_FALSE(span.active());
  span.AddArg("k", 1.0);  // must be a no-op, not a crash
}

TEST(TraceRecorder, FlowEventsCarryIdAndBindPoint) {
  TraceRecorder rec;
  rec.Start();
  const uint64_t flow = NextTraceId();
  EXPECT_NE(flow, 0u);
  rec.AppendFlowStart("rpc", flow);
  rec.AppendFlowFinish("rpc", flow);
  const std::string json = rec.ToJsonString();
  ASSERT_TRUE(ValidateChromeTraceJson(json).ok()) << json;
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok());
  const auto events = DataEvents(doc.value());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0]->Find("ph")->string_value, "s");
  EXPECT_EQ(events[1]->Find("ph")->string_value, "f");
  // Both halves correlate by the same (string) id; the finish binds to
  // its enclosing slice.
  const JsonValue* id0 = events[0]->Find("id");
  const JsonValue* id1 = events[1]->Find("id");
  ASSERT_NE(id0, nullptr);
  ASSERT_NE(id1, nullptr);
  EXPECT_EQ(id0->string_value, std::to_string(flow));
  EXPECT_EQ(id1->string_value, id0->string_value);
  EXPECT_EQ(events[0]->Find("bp"), nullptr);
  ASSERT_NE(events[1]->Find("bp"), nullptr);
  EXPECT_EQ(events[1]->Find("bp")->string_value, "e");
}

TEST(TraceRecorder, TrackNameMetadataEventsComeFirst) {
  TraceRecorder rec;
  rec.Start();
  rec.SetProcessName(1, "sim \"proc\"");  // escaping exercised
  rec.SetThreadName(1, 3, "worker-3");
  rec.SetThreadName(1, 3, "worker-three");  // replaces, not appends
  rec.AppendInstant("data");
  const std::string json = rec.ToJsonString();
  ASSERT_TRUE(ValidateChromeTraceJson(json).ok()) << json;
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok());
  const auto& events = doc.value().Find("traceEvents")->array;
  // Start() named pid 0; we named pid 1 and its thread 3 → 3 metadata
  // events, all before any data event.
  size_t metadata = 0;
  bool saw_data = false;
  bool process_named = false;
  bool thread_named = false;
  for (const JsonValue& ev : events) {
    if (ev.Find("ph")->string_value == "M") {
      EXPECT_FALSE(saw_data) << "metadata after data event";
      ++metadata;
      EXPECT_EQ(ev.Find("cat")->string_value, "__metadata");
      const std::string& name = ev.Find("name")->string_value;
      const JsonValue* args = ev.Find("args");
      ASSERT_NE(args, nullptr);
      if (name == "process_name" &&
          ev.Find("pid")->number_value == 1.0) {
        process_named = true;
        EXPECT_EQ(args->Find("name")->string_value, "sim \"proc\"");
      }
      if (name == "thread_name") {
        thread_named = true;
        EXPECT_EQ(ev.Find("tid")->number_value, 3.0);
        EXPECT_EQ(args->Find("name")->string_value, "worker-three");
      }
    } else {
      saw_data = true;
    }
  }
  EXPECT_EQ(metadata, 3u);
  EXPECT_TRUE(process_named);
  EXPECT_TRUE(thread_named);
}

TEST(TraceRecorder, NameThisThreadNamesTheCallingTrack) {
  TraceRecorder rec;
  rec.Start();
  rec.AppendInstant("warmup");  // registers this thread's buffer
  rec.NameThisThread("main-loop");
  const std::string json = rec.ToJsonString();
  EXPECT_NE(json.find("\"main-loop\""), std::string::npos) << json;
}

TEST(TraceRecorder, NextTraceIdIsUniqueAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] {
      ids[static_cast<size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        ids[static_cast<size_t>(t)].push_back(NextTraceId());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<uint64_t> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_EQ(std::count(all.begin(), all.end(), 0u), 0);
}

}  // namespace
}  // namespace hetps
