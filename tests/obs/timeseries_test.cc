#include "obs/timeseries.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"

namespace hetps {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(TimeSeriesRecorder, WindowsHoldDeltasNotTotals) {
  MetricsRegistry reg;
  Counter* pushes = reg.counter("ps.push.count");
  HistogramMetric* wait = reg.histogram("worker.wait_us",
                                        {{"worker", "2"}});
  Gauge* blocked = reg.gauge("ps.blocked_workers");

  TimeSeriesRecorder rec(&reg);
  pushes->Increment(10);
  wait->RecordInt(100);
  wait->RecordInt(300);
  blocked->Set(1);
  rec.Snapshot(/*epoch=*/1);

  pushes->Increment(5);
  wait->RecordInt(1000);
  blocked->Set(3);
  rec.Snapshot(/*epoch=*/2);

  EXPECT_EQ(rec.window_count(), 2u);
  auto doc = ParseJson(rec.ToJsonString());
  ASSERT_TRUE(doc.ok());
  const auto& windows = doc.value().Find("windows")->array;
  ASSERT_EQ(windows.size(), 2u);

  // First window: absolute values (deltas against an empty baseline).
  const JsonValue& w0 = windows[0];
  EXPECT_DOUBLE_EQ(w0.Find("epoch")->number_value, 1.0);
  EXPECT_DOUBLE_EQ(
      w0.Find("counters")->Find("ps.push.count")->number_value, 10.0);
  const JsonValue* h0 =
      w0.Find("histograms")->Find("worker.wait_us{worker=2}");
  ASSERT_NE(h0, nullptr);
  EXPECT_DOUBLE_EQ(h0->Find("count")->number_value, 2.0);
  EXPECT_DOUBLE_EQ(h0->Find("sum")->number_value, 400.0);

  // Second window: only the movement since the first.
  const JsonValue& w1 = windows[1];
  EXPECT_DOUBLE_EQ(
      w1.Find("counters")->Find("ps.push.count")->number_value, 5.0);
  const JsonValue* h1 =
      w1.Find("histograms")->Find("worker.wait_us{worker=2}");
  ASSERT_NE(h1, nullptr);
  EXPECT_DOUBLE_EQ(h1->Find("count")->number_value, 1.0);
  EXPECT_DOUBLE_EQ(h1->Find("sum")->number_value, 1000.0);
  // Gauges are levels, not flows: current value, not a delta.
  EXPECT_DOUBLE_EQ(
      w1.Find("gauges")->Find("ps.blocked_workers")->number_value, 3.0);
}

TEST(TimeSeriesRecorder, QuietMetricsAreElided) {
  MetricsRegistry reg;
  Counter* active = reg.counter("active");
  reg.counter("idle");  // never incremented
  TimeSeriesRecorder rec(&reg);
  active->Increment();
  rec.Snapshot(1);
  active->Increment();
  rec.Snapshot(2);
  const std::string json = rec.ToJsonString();
  EXPECT_NE(json.find("\"active\""), std::string::npos) << json;
  // A counter that never moved adds nothing to any window.
  EXPECT_EQ(json.find("\"idle\""), std::string::npos) << json;
}

TEST(TimeSeriesRecorder, BoundedRingDropsOldestWindows) {
  MetricsRegistry reg;
  Counter* c = reg.counter("c");
  TimeSeriesOptions opt;
  opt.max_windows = 4;
  TimeSeriesRecorder rec(&reg, opt);
  for (int i = 0; i < 10; ++i) {
    c->Increment();
    rec.Snapshot(i);
  }
  EXPECT_EQ(rec.window_count(), 4u);
  EXPECT_EQ(rec.dropped_windows(), 6);
  auto doc = ParseJson(rec.ToJsonString());
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ(doc.value().Find("dropped_windows")->number_value,
                   6.0);
  const auto& windows = doc.value().Find("windows")->array;
  ASSERT_EQ(windows.size(), 4u);
  // Survivors are the newest windows and keep their original indices.
  EXPECT_DOUBLE_EQ(windows.front().Find("index")->number_value, 6.0);
  EXPECT_DOUBLE_EQ(windows.back().Find("index")->number_value, 9.0);
}

TEST(TimeSeriesRecorder, SnapshotAtUsesExplicitTimestamps) {
  MetricsRegistry reg;
  Counter* c = reg.counter("c");
  TimeSeriesRecorder rec(&reg);
  c->Increment();
  rec.SnapshotAt(/*epoch=*/1, /*ts_us=*/1500000);
  c->Increment();
  rec.SnapshotAt(/*epoch=*/-1, /*ts_us=*/2750000);
  auto doc = ParseJson(rec.ToJsonString());
  ASSERT_TRUE(doc.ok());
  const auto& windows = doc.value().Find("windows")->array;
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].Find("ts_us")->number_value, 1500000.0);
  EXPECT_DOUBLE_EQ(windows[1].Find("ts_us")->number_value, 2750000.0);
  EXPECT_DOUBLE_EQ(windows[1].Find("epoch")->number_value, -1.0);
}

TEST(TimeSeriesRecorder, ClearRebasesDeltas) {
  MetricsRegistry reg;
  Counter* c = reg.counter("c");
  TimeSeriesRecorder rec(&reg);
  c->Increment(100);
  rec.Snapshot(1);
  rec.Clear();
  EXPECT_EQ(rec.window_count(), 0u);
  // Post-Clear snapshot must not re-report the pre-Clear increments.
  c->Increment(7);
  rec.Snapshot(2);
  auto doc = ParseJson(rec.ToJsonString());
  ASSERT_TRUE(doc.ok());
  const auto& windows = doc.value().Find("windows")->array;
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].Find("counters")->Find("c")->number_value,
                   7.0);
}

TEST(TimeSeriesRecorder, WriteToFileRoundTrips) {
  MetricsRegistry reg;
  reg.counter("c")->Increment();
  TimeSeriesRecorder rec(&reg);
  rec.Snapshot(1);
  const std::string path = TempPath("timeseries_roundtrip.json");
  ASSERT_TRUE(rec.WriteToFile(path).ok());
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(ValidateTimeSeriesJson(buf.str()).ok()) << buf.str();
  std::remove(path.c_str());
}

TEST(ValidateTimeSeriesJsonTest, AcceptsRealOutput) {
  MetricsRegistry reg;
  reg.counter("c")->Increment();
  reg.histogram("h")->RecordInt(5);
  TimeSeriesRecorder rec(&reg);
  rec.Snapshot(1);
  rec.Snapshot(2);
  const std::string json = rec.ToJsonString();
  EXPECT_TRUE(ValidateTimeSeriesJson(json).ok())
      << ValidateTimeSeriesJson(json).ToString() << "\n" << json;
}

TEST(ValidateTimeSeriesJsonTest, RejectsAdversarialInputs) {
  // Truncated mid-document (a crashed writer).
  EXPECT_FALSE(ValidateTimeSeriesJson(
                   "{\"schema\":\"hetps.timeseries.v1\",\"max_windows\""
                   ":512,\"dropped_windows\":0,\"windows\":[{\"index\"")
                   .ok());
  // Unknown schema version must be rejected, not best-effort parsed.
  EXPECT_FALSE(ValidateTimeSeriesJson(
                   "{\"schema\":\"hetps.timeseries.v2\",\"max_windows\""
                   ":512,\"dropped_windows\":0,\"windows\":[]}")
                   .ok());
  // Out-of-order window indices (corrupt or hand-edited file).
  EXPECT_FALSE(
      ValidateTimeSeriesJson(
          "{\"schema\":\"hetps.timeseries.v1\",\"max_windows\":512,"
          "\"dropped_windows\":0,\"windows\":["
          "{\"index\":1,\"epoch\":1,\"ts_us\":0,\"counters\":{},"
          "\"gauges\":{},\"histograms\":{}},"
          "{\"index\":0,\"epoch\":2,\"ts_us\":1,\"counters\":{},"
          "\"gauges\":{},\"histograms\":{}}]}")
          .ok());
  // Histogram entry without numeric count/sum.
  EXPECT_FALSE(
      ValidateTimeSeriesJson(
          "{\"schema\":\"hetps.timeseries.v1\",\"max_windows\":512,"
          "\"dropped_windows\":0,\"windows\":["
          "{\"index\":0,\"epoch\":1,\"ts_us\":0,\"counters\":{},"
          "\"gauges\":{},\"histograms\":{\"h\":{\"count\":\"x\"}}}]}")
          .ok());
  // Not an object at all.
  EXPECT_FALSE(ValidateTimeSeriesJson("[]").ok());
  EXPECT_FALSE(ValidateTimeSeriesJson("garbage").ok());
}

}  // namespace
}  // namespace hetps
