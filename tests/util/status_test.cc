#include "util/status.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad x");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad x");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad x");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("").IsFailedPrecondition());
  EXPECT_TRUE(Status::Aborted("").IsAborted());
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotSupported("").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "Aborted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status Helper(bool fail) {
  HETPS_RETURN_NOT_OK(fail ? Status::Aborted("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_TRUE(Helper(true).IsAborted());
}

}  // namespace
}  // namespace hetps
