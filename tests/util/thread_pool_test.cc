#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>

namespace hetps {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanSubmitMoreWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(10); });
  });
  // Wait twice: the nested task may be enqueued after the first Wait
  // observes an empty queue only if the outer one already ran.
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.num_threads(), 5u);
}

}  // namespace
}  // namespace hetps
