#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hetps {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanSubmitMoreWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(10); });
  });
  // Wait twice: the nested task may be enqueued after the first Wait
  // observes an empty queue only if the outer one already ran.
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.num_threads(), 5u);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRefusedNotFatal) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.Submit([&] { counter.fetch_add(1); }));
  pool.Shutdown();
  // Refused, returns false — and the lambda is never run.
  EXPECT_FALSE(pool.Submit([&] { counter.fetch_add(100); }));
  EXPECT_EQ(counter.load(), 1);  // queued work drained before join
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndRaceSafe) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  std::vector<std::thread> closers;
  for (int i = 0; i < 4; ++i) {
    closers.emplace_back([&] { pool.Shutdown(); });
  }
  for (auto& t : closers) t.join();
  pool.Shutdown();  // and again after everyone joined
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitRacesShutdownWithoutCrashing) {
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(2);
    std::atomic<int> accepted{0};
    std::atomic<int> ran{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 3; ++t) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 100; ++i) {
          if (pool.Submit([&] { ran.fetch_add(1); })) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    std::thread closer([&] { pool.Shutdown(); });
    for (auto& t : submitters) t.join();
    closer.join();
    // Every accepted task ran (shutdown drains the queue); refused
    // tasks never ran.
    EXPECT_EQ(ran.load(), accepted.load());
  }
}

}  // namespace
}  // namespace hetps
