#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace hetps {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, DoubleRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextDouble(-2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(77);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    EXPECT_GT(rng.NextLognormal(0.0, 0.5), 0.0);
  }
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(8);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ZipfStaysInRangeAndIsSkewed) {
  Rng rng(6);
  const uint64_t n = 1000;
  int low = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const uint64_t x = rng.NextZipf(n, 1.2);
    ASSERT_LT(x, n);
    if (x < 10) ++low;
  }
  // Strong skew: a large share of draws hit the first ten indices.
  EXPECT_GT(low, samples / 4);
}

TEST(RngTest, ZipfHandlesSingleElement) {
  Rng rng(6);
  EXPECT_EQ(rng.NextZipf(1, 1.2), 0u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkGivesIndependentStreams) {
  Rng parent(42);
  Rng c0 = parent.Fork(0);
  Rng c1 = parent.Fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c0.NextUint64() == c1.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 4);
  // Same fork index reproduces the same stream.
  Rng c0b = parent.Fork(0);
  Rng c0c = Rng(42).Fork(0);
  EXPECT_EQ(c0b.NextUint64(), c0c.NextUint64());
}

TEST(Mix64Test, DeterministicAndSpreading) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(Mix64(0), 0u);
}

}  // namespace
}  // namespace hetps
