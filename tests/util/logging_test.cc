#include "util/logging.h"

#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace hetps {
namespace {

/// Captures log records for assertions; restores the previous sink on
/// destruction so tests cannot leak a dangling sink.
class CapturingSink : public LogSink {
 public:
  CapturingSink() : previous_(SetLogSink(this)) {}
  ~CapturingSink() override { SetLogSink(previous_); }

  void Write(LogLevel level, const char* file, int line,
             const std::string& message) override {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back({level, file, line, message});
  }

  struct Record {
    LogLevel level;
    std::string file;
    int line;
    std::string message;
  };
  std::vector<Record> records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

 private:
  LogSink* previous_;
  mutable std::mutex mu_;
  std::vector<Record> records_;
};

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(prev);
}

TEST(LoggingTest, BelowLevelMessagesAreCheap) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Should not crash and should not emit; mostly checks the stream path.
  HETPS_LOG(Debug) << "invisible " << 123;
  HETPS_LOG(Info) << "also invisible";
  SetLogLevel(prev);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  HETPS_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingTest, SinkCapturesRecords) {
  CapturingSink sink;
  HETPS_LOG(Info) << "captured " << 7;
  HETPS_LOG(Debug) << "filtered out";  // below default kInfo level
  const auto records = sink.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].level, LogLevel::kInfo);
  EXPECT_EQ(records[0].message, "captured 7");
  // The sink receives the raw message; the prefix is the emitter's job.
  EXPECT_EQ(records[0].message.find('['), std::string::npos);
  EXPECT_NE(records[0].file.find("logging_test.cc"), std::string::npos);
  EXPECT_GT(records[0].line, 0);
}

TEST(LoggingTest, SetLogSinkReturnsPrevious) {
  CapturingSink outer;
  {
    CapturingSink inner;
    HETPS_LOG(Info) << "to inner";
    ASSERT_EQ(inner.records().size(), 1u);
  }
  // inner restored outer on destruction.
  HETPS_LOG(Info) << "to outer";
  const auto records = outer.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].message, "to outer");
}

TEST(LoggingTest, VlogRespectsVerbosity) {
  CapturingSink sink;
  const int prev = GetVLogLevel();
  SetVLogLevel(0);
  HETPS_VLOG(1) << "hidden";
  SetVLogLevel(2);
  // VLOG emits at Debug severity even though the minimum level is kInfo.
  HETPS_VLOG(1) << "shown " << 1;
  HETPS_VLOG(2) << "also shown";
  HETPS_VLOG(3) << "too verbose";
  SetVLogLevel(prev);
  const auto records = sink.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].level, LogLevel::kDebug);
  EXPECT_EQ(records[0].message, "shown 1");
  EXPECT_EQ(records[1].message, "also shown");
}

TEST(LoggingTest, VlogOperandsNotEvaluatedWhenOff) {
  const int prev = GetVLogLevel();
  SetVLogLevel(0);
  int evaluations = 0;
  HETPS_VLOG(5) << [&] {
    ++evaluations;
    return "never";
  }();
  EXPECT_EQ(evaluations, 0);
  SetVLogLevel(prev);
}

TEST(LoggingTest, DcheckPassesOnTrue) {
  HETPS_DCHECK(2 + 2 == 4) << "never shown";
  SUCCEED();
}

#ifdef NDEBUG
TEST(LoggingTest, DcheckCompiledOutInReleaseBuilds) {
  int evaluations = 0;
  // Under NDEBUG the condition must not be evaluated at all.
  HETPS_DCHECK([&] {
    ++evaluations;
    return false;
  }()) << "never reached";
  EXPECT_EQ(evaluations, 0);
}
#else
TEST(LoggingDeathTest, DcheckAbortsInDebugBuilds) {
  EXPECT_DEATH({ HETPS_DCHECK(false) << "dcheck boom"; }, "Check failed");
}
#endif

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ HETPS_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ HETPS_LOG(Fatal) << "fatal path"; }, "fatal path");
}

}  // namespace
}  // namespace hetps
