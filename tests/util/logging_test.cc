#include "util/logging.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(prev);
}

TEST(LoggingTest, BelowLevelMessagesAreCheap) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Should not crash and should not emit; mostly checks the stream path.
  HETPS_LOG(Debug) << "invisible " << 123;
  HETPS_LOG(Info) << "also invisible";
  SetLogLevel(prev);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  HETPS_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ HETPS_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ HETPS_LOG(Fatal) << "fatal path"; }, "fatal path");
}

}  // namespace
}  // namespace hetps
