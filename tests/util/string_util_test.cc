#include "util/string_util.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, RemovesWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 1.239), "1.24");
  EXPECT_EQ(StringPrintf("plain"), "plain");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "20000"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("20000"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTableDeathTest, RejectsRowWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "Check failed");
}

}  // namespace
}  // namespace hetps
