#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hetps {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatTest, MatchesClosedForm) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squares = 32 over 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeEqualsCombined) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  for (int i = 0; i < 10; ++i) {
    const double x = i * 1.3 - 2.0;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(VectorStatsTest, MeanAndVariance) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(Variance(v), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(PopulationVariance(v), 1.25, 1e-12);
}

TEST(VectorStatsTest, DegenerateInputs) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({}), 0.0);
  EXPECT_EQ(Variance({5.0}), 0.0);
  EXPECT_EQ(PopulationVariance({}), 0.0);
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 25.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99.0), 7.0);
}

TEST(HistogramTest, CountsAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);
  h.Add(3.0);
  h.Add(9.9);
  h.Add(-1.0);   // clamps to first bucket
  h.Add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(4), 2u);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
}

TEST(HistogramTest, ApproxQuantile) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(i % 10 + 0.5);
  const double median = h.ApproxQuantile(0.5);
  EXPECT_GE(median, 3.0);
  EXPECT_LE(median, 7.0);
}

TEST(HistogramTest, ToStringRenders) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.1);
  const std::string s = h.ToString();
  EXPECT_NE(s.find('#'), std::string::npos);
}

}  // namespace
}  // namespace hetps
