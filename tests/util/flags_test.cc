#include "util/flags.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

FlagParser Parsed(std::vector<const char*> args) {
  FlagParser p;
  EXPECT_TRUE(p.Parse(static_cast<int>(args.size()), args.data()).ok());
  return p;
}

TEST(FlagParserTest, ParsesEqualsAndSpaceForms) {
  FlagParser p = Parsed({"--alpha=0.5", "--workers", "8", "--verbose"});
  EXPECT_DOUBLE_EQ(p.GetDouble("alpha", 0.0).value(), 0.5);
  EXPECT_EQ(p.GetInt("workers", 0).value(), 8);
  EXPECT_TRUE(p.GetBool("verbose", false));
}

TEST(FlagParserTest, DefaultsWhenMissing) {
  FlagParser p = Parsed({});
  EXPECT_EQ(p.GetString("mode", "train"), "train");
  EXPECT_EQ(p.GetInt("n", 7).value(), 7);
  EXPECT_FALSE(p.GetBool("quiet", false));
  EXPECT_FALSE(p.Has("mode"));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser p = Parsed({"train", "--k=3", "data.libsvm"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "train");
  EXPECT_EQ(p.positional()[1], "data.libsvm");
}

TEST(FlagParserTest, RejectsDuplicatesAndEmptyNames) {
  FlagParser p;
  const char* dup[] = {"--x=1", "--x=2"};
  EXPECT_FALSE(p.Parse(2, dup).ok());
  FlagParser p2;
  const char* empty[] = {"--=1"};
  EXPECT_FALSE(p2.Parse(1, empty).ok());
}

TEST(FlagParserTest, TypeErrorsSurfaceAsStatus) {
  FlagParser p = Parsed({"--n=abc", "--x=1.2.3"});
  EXPECT_FALSE(p.GetInt("n", 0).ok());
  EXPECT_FALSE(p.GetDouble("x", 0.0).ok());
}

TEST(FlagParserTest, BoolValueForms) {
  FlagParser p = Parsed({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_TRUE(p.GetBool("b", false));
  EXPECT_TRUE(p.GetBool("c", false));
  EXPECT_FALSE(p.GetBool("d", true));
}

TEST(FlagParserTest, UnusedFlagsDetectTypos) {
  FlagParser p = Parsed({"--learning-rate=0.1", "--lr=0.2"});
  (void)p.GetDouble("learning-rate", 0.0);
  const auto unused = p.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "lr");
}

}  // namespace
}  // namespace hetps
