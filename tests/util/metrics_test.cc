#include "util/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace hetps {
namespace {

TEST(MetricsTest, CounterIncrements) {
  MetricsRegistry registry;
  Counter* c = registry.counter("pushes");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5);
  // Same name returns the same counter.
  EXPECT_EQ(registry.counter("pushes"), c);
  EXPECT_EQ(registry.counter("pushes")->value(), 5);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("memory");
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  g->Set(12.5);
  g->Set(-3.25);
  EXPECT_DOUBLE_EQ(g->value(), -3.25);
}

TEST(MetricsTest, DistributionAccumulates) {
  MetricsRegistry registry;
  DistributionMetric* d = registry.distribution("latency");
  d->Record(1.0);
  d->Record(3.0);
  const RunningStat s = d->Snapshot();
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(MetricsTest, CountersAreThreadSafe) {
  MetricsRegistry registry;
  Counter* c = registry.counter("hits");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < 1000; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), 4000);
}

TEST(MetricsTest, ReportRendersAllKinds) {
  MetricsRegistry registry;
  registry.counter("a.count")->Increment(3);
  registry.gauge("b.gauge")->Set(1.5);
  registry.distribution("c.dist")->Record(2.0);
  const std::string report = registry.Report();
  EXPECT_NE(report.find("a.count 3"), std::string::npos);
  EXPECT_NE(report.find("b.gauge 1.5"), std::string::npos);
  EXPECT_NE(report.find("c.dist count=1"), std::string::npos);
}

TEST(MetricsTest, ReportIncludesMinAndStddev) {
  MetricsRegistry registry;
  DistributionMetric* d = registry.distribution("lat");
  d->Record(1.0);
  d->Record(2.0);
  d->Record(3.0);
  const std::string report = registry.Report();
  EXPECT_NE(report.find("min=1"), std::string::npos) << report;
  EXPECT_NE(report.find("stddev=1"), std::string::npos) << report;
  // %.6g formatting: no trailing zero spray.
  registry.gauge("g")->Set(0.3333333333333);
  EXPECT_NE(registry.Report().find("g 0.333333"), std::string::npos);
}

TEST(MetricsTest, UnsetGaugeIsDistinguishableAndSkipped) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("maybe");
  EXPECT_FALSE(g->has_value());
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  // Not rendered until set: "never measured" != "measured 0".
  EXPECT_EQ(registry.Report().find("maybe"), std::string::npos);
  g->Set(0.0);
  EXPECT_TRUE(g->has_value());
  EXPECT_NE(registry.Report().find("maybe 0"), std::string::npos);
  g->Reset();
  EXPECT_FALSE(g->has_value());
}

TEST(MetricsTest, LabeledFamiliesAreDistinctMembers) {
  MetricsRegistry registry;
  Counter* w0 = registry.counter("pushes", {{"worker", "0"}});
  Counter* w1 = registry.counter("pushes", {{"worker", "1"}});
  EXPECT_NE(w0, w1);
  w0->Increment(2);
  w1->Increment(5);
  // Labels are canonicalized (sorted by key) — order must not matter.
  Counter* relabeled =
      registry.counter("m", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(registry.counter("m", {{"a", "1"}, {"b", "2"}}), relabeled);
  const std::string report = registry.Report();
  EXPECT_NE(report.find("pushes{worker=0} 2"), std::string::npos)
      << report;
  EXPECT_NE(report.find("pushes{worker=1} 5"), std::string::npos);
}

TEST(MetricsTest, HistogramReportsQuantiles) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.histogram("iter_us");
  for (int i = 1; i <= 100; ++i) h->RecordInt(i);
  EXPECT_EQ(registry.histogram("iter_us"), h);
  const std::string report = registry.Report();
  EXPECT_NE(report.find("iter_us count=100"), std::string::npos)
      << report;
  EXPECT_NE(report.find("p50="), std::string::npos);
  EXPECT_NE(report.find("p99="), std::string::npos);
  EXPECT_GE(h->ValueAtQuantile(0.5), 45);
  EXPECT_LE(h->ValueAtQuantile(0.5), 55);
  EXPECT_GE(h->ValueAtQuantile(0.99), 94);
}

TEST(MetricsTest, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.counter("ps.push.count")->Increment(7);
  registry.gauge("mem.bytes")->Set(42.0);
  registry.histogram("lat_us", {{"worker", "3"}})->RecordInt(10);
  const std::string text = registry.PrometheusText();
  // '.' sanitized to '_', TYPE lines present, labels preserved.
  EXPECT_NE(text.find("# TYPE ps_push_count counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ps_push_count 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mem_bytes gauge"), std::string::npos);
  // Histograms expose the native exposition format: cumulative
  // `_bucket{le=...}` series plus `_sum`/`_count` (not summary
  // quantiles).
  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_us_bucket{worker=\"3\",le=\"+Inf\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_us_sum{worker=\"3\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("lat_us_count{worker=\"3\"} 1"),
            std::string::npos);
  EXPECT_EQ(text.find("quantile="), std::string::npos);
}

TEST(MetricsTest, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.histogram("lat");
  // Three values in well-separated buckets: each occupied bucket's
  // count must include everything below it.
  h->RecordInt(1);
  h->RecordInt(100);
  h->RecordInt(10000);
  const std::string text = registry.PrometheusText();
  // Collect the bucket counts in emission (ascending-le) order.
  std::vector<long> counts;
  std::vector<double> bounds;
  size_t pos = 0;
  while ((pos = text.find("lat_bucket{le=\"", pos)) !=
         std::string::npos) {
    pos += 15;
    const size_t quote = text.find('"', pos);
    const std::string le = text.substr(pos, quote - pos);
    bounds.push_back(le == "+Inf"
                         ? std::numeric_limits<double>::infinity()
                         : std::stod(le));
    counts.push_back(std::stol(text.substr(quote + 2)));
  }
  ASSERT_EQ(counts.size(), 4u) << text;  // 3 occupied buckets + +Inf
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 3);
  EXPECT_EQ(counts[3], 3);
  // `le` bounds ascend and each value lies under its bucket's bound.
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end())) << text;
  EXPECT_GT(bounds[0], 1.0 - 1e-9);
  EXPECT_GT(bounds[1], 100.0 - 1e-9);
  EXPECT_GT(bounds[2], 10000.0 - 1e-9);
}

TEST(MetricsTest, JsonSnapshotShape) {
  MetricsRegistry registry;
  registry.counter("c")->Increment(2);
  registry.gauge("g")->Set(1.5);
  registry.distribution("d")->Record(4.0);
  registry.histogram("h")->RecordInt(8);
  const std::string json = registry.JsonSnapshot();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"distributions\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"c\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsTest, ResetValuesKeepsPointersValid) {
  MetricsRegistry registry;
  Counter* c = registry.counter("c");
  Gauge* g = registry.gauge("g");
  DistributionMetric* d = registry.distribution("d");
  HistogramMetric* h = registry.histogram("h");
  c->Increment(3);
  g->Set(2.0);
  d->Record(1.0);
  h->RecordInt(5);
  registry.ResetValues();
  EXPECT_EQ(registry.counter("c"), c);
  EXPECT_EQ(c->value(), 0);
  EXPECT_FALSE(g->has_value());
  EXPECT_EQ(d->Snapshot().count(), 0u);
  EXPECT_EQ(h->count(), 0);
  // Recording after reset works on the same objects.
  c->Increment();
  EXPECT_EQ(c->value(), 1);
}

}  // namespace
}  // namespace hetps
