#include "util/metrics.h"

#include <gtest/gtest.h>

#include <thread>

namespace hetps {
namespace {

TEST(MetricsTest, CounterIncrements) {
  MetricsRegistry registry;
  Counter* c = registry.counter("pushes");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5);
  // Same name returns the same counter.
  EXPECT_EQ(registry.counter("pushes"), c);
  EXPECT_EQ(registry.counter("pushes")->value(), 5);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("memory");
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  g->Set(12.5);
  g->Set(-3.25);
  EXPECT_DOUBLE_EQ(g->value(), -3.25);
}

TEST(MetricsTest, DistributionAccumulates) {
  MetricsRegistry registry;
  DistributionMetric* d = registry.distribution("latency");
  d->Record(1.0);
  d->Record(3.0);
  const RunningStat s = d->Snapshot();
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(MetricsTest, CountersAreThreadSafe) {
  MetricsRegistry registry;
  Counter* c = registry.counter("hits");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < 1000; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), 4000);
}

TEST(MetricsTest, ReportRendersAllKinds) {
  MetricsRegistry registry;
  registry.counter("a.count")->Increment(3);
  registry.gauge("b.gauge")->Set(1.5);
  registry.distribution("c.dist")->Record(2.0);
  const std::string report = registry.Report();
  EXPECT_NE(report.find("a.count 3"), std::string::npos);
  EXPECT_NE(report.find("b.gauge 1.5"), std::string::npos);
  EXPECT_NE(report.find("c.dist count=1"), std::string::npos);
}

}  // namespace
}  // namespace hetps
