#include "models/matrix_factorization.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

SyntheticRatingsConfig SmallConfig() {
  SyntheticRatingsConfig c;
  c.num_users = 80;
  c.num_items = 60;
  c.true_rank = 3;
  c.num_ratings = 2500;
  c.noise_stddev = 0.02;
  return c;
}

MatrixFactorizationConfig FastTrain() {
  MatrixFactorizationConfig c;
  c.rank = 6;
  c.num_workers = 2;
  c.max_clocks = 20;
  c.learning_rate = 0.08;
  return c;
}

TEST(RatingsDatasetTest, AddGrowsShape) {
  RatingsDataset d;
  d.Add({3, 7, 1.5});
  EXPECT_EQ(d.num_users(), 4);
  EXPECT_EQ(d.num_items(), 8);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.MeanRating(), 1.5);
}

TEST(RatingsDatasetTest, ConstructorValidatesRange) {
  std::vector<Rating> bad = {{5, 0, 1.0}};
  EXPECT_DEATH(RatingsDataset(bad, 3, 3), "out of range");
}

TEST(SyntheticRatingsTest, DeterministicAndShaped) {
  const RatingsDataset a = GenerateSyntheticRatings(SmallConfig());
  const RatingsDataset b = GenerateSyntheticRatings(SmallConfig());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.num_users(), 80);
  EXPECT_EQ(a.num_items(), 60);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.rating(i).value, b.rating(i).value);
  }
}

TEST(MatrixFactorizationTest, RecoversLowRankStructure) {
  RatingsDataset d = GenerateSyntheticRatings(SmallConfig());
  Rng rng(1);
  d.Shuffle(&rng);
  auto model = TrainMatrixFactorization(d, FastTrain());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const double rmse = model.value().Rmse(d);
  // Baseline: predicting the mean gives roughly the rating stddev (~1/k
  // scaled factors -> ~1.0); the factor model should be far below.
  EXPECT_LT(rmse, 0.25);
}

TEST(MatrixFactorizationTest, AllRulesTrain) {
  RatingsDataset d = GenerateSyntheticRatings(SmallConfig());
  Rng rng(1);
  d.Shuffle(&rng);
  for (const char* rule : {"ssp", "con", "dyn"}) {
    MatrixFactorizationConfig cfg = FastTrain();
    cfg.rule = rule;
    if (std::string(rule) == "ssp") cfg.learning_rate = 0.04;
    auto model = TrainMatrixFactorization(d, cfg);
    ASSERT_TRUE(model.ok()) << rule;
    EXPECT_LT(model.value().Rmse(d), 0.6) << rule;
  }
}

TEST(MatrixFactorizationTest, PredictUsesBothFactorBlocks) {
  MatrixFactorizationModel m;
  m.rank = 2;
  m.num_users = 2;
  m.num_items = 2;
  m.user_factors = {1.0, 0.0, 0.0, 1.0};
  m.item_factors = {2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(m.Predict(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.Predict(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.Predict(1, 1), 5.0);
}

TEST(MatrixFactorizationTest, RmseOfExactModelIsZero) {
  MatrixFactorizationModel m;
  m.rank = 1;
  m.num_users = 1;
  m.num_items = 1;
  m.user_factors = {2.0};
  m.item_factors = {3.0};
  RatingsDataset d;
  d.Add({0, 0, 6.0});
  EXPECT_DOUBLE_EQ(m.Rmse(d), 0.0);
}

TEST(MatrixFactorizationTest, ValidatesConfig) {
  RatingsDataset d = GenerateSyntheticRatings(SmallConfig());
  MatrixFactorizationConfig cfg = FastTrain();
  cfg.rank = 0;
  EXPECT_FALSE(TrainMatrixFactorization(d, cfg).ok());
  cfg = FastTrain();
  cfg.learning_rate = -0.1;
  EXPECT_FALSE(TrainMatrixFactorization(d, cfg).ok());
  EXPECT_FALSE(
      TrainMatrixFactorization(RatingsDataset(), FastTrain()).ok());
}

}  // namespace
}  // namespace hetps
