#include "models/kmeans.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hetps {
namespace {

// Three well-separated clusters in a 6-dimensional space.
Dataset ClusteredData() {
  Dataset d;
  Rng rng(12);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 60; ++i) {
      SparseVector x;
      for (int j = 0; j < 2; ++j) {
        x.PushBack(2 * c + j, 5.0 + rng.NextGaussian(0.0, 0.2));
      }
      Example ex;
      ex.features = std::move(x);
      ex.label = c;
      d.Add(std::move(ex));
    }
  }
  Rng shuffle(3);
  d.Shuffle(&shuffle);
  return d;
}

KMeansConfig FastConfig() {
  KMeansConfig cfg;
  cfg.k = 3;
  cfg.num_workers = 2;
  cfg.max_clocks = 8;
  cfg.learning_rate = 0.3;
  return cfg;
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  const Dataset d = ClusteredData();
  auto model = TrainKMeans(d, FastConfig());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const KMeansModel& m = model.value();
  EXPECT_EQ(m.k, 3);
  // Inertia far below the between-cluster scale (~50).
  EXPECT_LT(m.Inertia(d), 5.0);
  // Points of the same true cluster map to the same centroid.
  int agree = 0;
  for (size_t i = 0; i + 1 < d.size(); ++i) {
    for (size_t j = i + 1; j < std::min(d.size(), i + 10); ++j) {
      if (d.example(i).label == d.example(j).label &&
          m.Assign(d.example(i).features) ==
              m.Assign(d.example(j).features)) {
        ++agree;
      }
    }
  }
  EXPECT_GT(agree, 0);
}

TEST(KMeansTest, InertiaImprovesOverSingleCentroidBaseline) {
  const Dataset d = ClusteredData();
  KMeansConfig one = FastConfig();
  one.k = 1;
  auto single = TrainKMeans(d, one);
  ASSERT_TRUE(single.ok());
  auto three = TrainKMeans(d, FastConfig());
  ASSERT_TRUE(three.ok());
  EXPECT_LT(three.value().Inertia(d), 0.5 * single.value().Inertia(d));
}

TEST(KMeansTest, AllRulesWork) {
  const Dataset d = ClusteredData();
  for (const char* rule : {"ssp", "con", "dyn"}) {
    KMeansConfig cfg = FastConfig();
    cfg.rule = rule;
    if (std::string(rule) == "ssp") cfg.learning_rate = 0.15;
    auto model = TrainKMeans(d, cfg);
    ASSERT_TRUE(model.ok()) << rule;
    EXPECT_LT(model.value().Inertia(d), 20.0) << rule;
  }
}

TEST(KMeansTest, ValidatesConfig) {
  const Dataset d = ClusteredData();
  KMeansConfig cfg = FastConfig();
  cfg.k = 0;
  EXPECT_FALSE(TrainKMeans(d, cfg).ok());
  cfg = FastConfig();
  cfg.learning_rate = 1.5;
  EXPECT_FALSE(TrainKMeans(d, cfg).ok());
  cfg = FastConfig();
  cfg.k = 10000;
  EXPECT_FALSE(TrainKMeans(d, cfg).ok());
  EXPECT_FALSE(TrainKMeans(Dataset(), FastConfig()).ok());
}

TEST(KMeansTest, AssignReturnsValidCentroid) {
  const Dataset d = ClusteredData();
  auto model = TrainKMeans(d, FastConfig());
  ASSERT_TRUE(model.ok());
  for (size_t i = 0; i < 10; ++i) {
    const int c = model.value().Assign(d.example(i).features);
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 3);
  }
}

}  // namespace
}  // namespace hetps
