#include "models/linear_model.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/synthetic.h"
#include "util/rng.h"

namespace hetps {
namespace {

Dataset ModelData() {
  SyntheticConfig cfg;
  cfg.num_examples = 500;
  cfg.num_features = 150;
  cfg.avg_nnz = 8;
  cfg.label_noise = 0.01;
  cfg.seed = 55;
  Dataset d = GenerateSynthetic(cfg);
  Rng rng(6);
  d.Shuffle(&rng);
  return d;
}

LinearModelConfig FastConfig() {
  LinearModelConfig cfg;
  cfg.num_workers = 3;
  cfg.num_servers = 2;
  cfg.max_clocks = 10;
  cfg.learning_rate = 0.5;
  return cfg;
}

TEST(LinearModelTest, TrainsAccurateLogisticModel) {
  const Dataset d = ModelData();
  auto model = LinearModel::Train(d, FastConfig());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GT(model.value().Accuracy(d), 0.85);
  EXPECT_LT(model.value().Objective(d), 0.4);
}

TEST(LinearModelTest, SvmTrainingWorks) {
  const Dataset d = ModelData();
  LinearModelConfig cfg = FastConfig();
  cfg.loss = "hinge";
  auto model = LinearModel::Train(d, cfg);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model.value().Accuracy(d), 0.85);
  EXPECT_EQ(model.value().loss_name(), "hinge");
}

TEST(LinearModelTest, EveryRuleTrains) {
  const Dataset d = ModelData();
  for (const char* rule : {"ssp", "con", "dyn"}) {
    LinearModelConfig cfg = FastConfig();
    cfg.rule = rule;
    // Accumulate rule needs a smaller local rate (§7.4.1).
    if (std::string(rule) == "ssp") cfg.learning_rate = 0.02;
    auto model = LinearModel::Train(d, cfg);
    ASSERT_TRUE(model.ok()) << rule;
    EXPECT_GT(model.value().Accuracy(d), 0.7) << rule;
  }
}

TEST(LinearModelTest, PredictionsMatchMarginSign) {
  const Dataset d = ModelData();
  auto model = LinearModel::Train(d, FastConfig());
  ASSERT_TRUE(model.ok());
  const auto& m = model.value();
  for (size_t i = 0; i < 20; ++i) {
    const auto& x = d.example(i).features;
    const double margin = m.PredictMargin(x);
    const double p = m.Predict(x);
    EXPECT_EQ(p >= 0.5, margin >= 0.0);
  }
}

TEST(LinearModelTest, SaveLoadRoundTrip) {
  const Dataset d = ModelData();
  auto model = LinearModel::Train(d, FastConfig());
  ASSERT_TRUE(model.ok());
  const std::string path = testing::TempDir() + "/hetps_model_rt.txt";
  ASSERT_TRUE(model.value().Save(path).ok());
  auto loaded = LinearModel::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().weights(), model.value().weights());
  EXPECT_EQ(loaded.value().loss_name(), "logistic");
  EXPECT_DOUBLE_EQ(loaded.value().Accuracy(d), model.value().Accuracy(d));
  std::remove(path.c_str());
}

TEST(LinearModelTest, LoadRejectsCorruptFiles) {
  const std::string path = testing::TempDir() + "/hetps_model_bad.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("not a model\n", f);
    fclose(f);
  }
  EXPECT_FALSE(LinearModel::Load(path).ok());
  EXPECT_FALSE(LinearModel::Load("/no/such/file").ok());
  std::remove(path.c_str());
}

TEST(LinearModelTest, TrainValidatesConfig) {
  const Dataset d = ModelData();
  LinearModelConfig cfg = FastConfig();
  cfg.loss = "bogus";
  EXPECT_TRUE(LinearModel::Train(d, cfg).status().IsInvalidArgument());
  cfg = FastConfig();
  cfg.rule = "bogus";
  EXPECT_TRUE(LinearModel::Train(d, cfg).status().IsInvalidArgument());
  cfg = FastConfig();
  cfg.learning_rate = -1.0;
  EXPECT_TRUE(LinearModel::Train(d, cfg).status().IsInvalidArgument());
  cfg = FastConfig();
  cfg.num_workers = 0;
  EXPECT_TRUE(LinearModel::Train(d, cfg).status().IsInvalidArgument());
  EXPECT_TRUE(
      LinearModel::Train(Dataset(), FastConfig()).status()
          .IsInvalidArgument());
}

TEST(LinearModelTest, TrainStatsExposeTrace) {
  const Dataset d = ModelData();
  auto model = LinearModel::Train(d, FastConfig());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().train_stats().objective_per_clock.size(), 10u);
}

}  // namespace
}  // namespace hetps
