#include "models/lda.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace hetps {
namespace {

SyntheticCorpusConfig SmallCorpus() {
  SyntheticCorpusConfig c;
  c.num_topics = 3;
  c.words_per_topic = 20;
  c.num_documents = 90;
  c.tokens_per_document = 50;
  c.intruder_fraction = 0.05;
  return c;
}

LdaConfig FastLda() {
  LdaConfig c;
  c.num_topics = 3;
  c.num_workers = 2;
  c.max_clocks = 15;
  return c;
}

TEST(CorpusTest, AddDocumentTracksShape) {
  Corpus corpus;
  corpus.AddDocument({0, 5, 2});
  corpus.AddDocument({7});
  EXPECT_EQ(corpus.num_documents(), 2u);
  EXPECT_EQ(corpus.vocab_size(), 8);
  EXPECT_EQ(corpus.total_tokens(), 4u);
  EXPECT_EQ(corpus.document(1).size(), 1u);
}

TEST(SyntheticCorpusTest, DeterministicAndShaped) {
  const Corpus a = GenerateSyntheticCorpus(SmallCorpus());
  const Corpus b = GenerateSyntheticCorpus(SmallCorpus());
  ASSERT_EQ(a.num_documents(), b.num_documents());
  EXPECT_EQ(a.document(3), b.document(3));
  EXPECT_LE(a.vocab_size(), 60);
  EXPECT_EQ(a.total_tokens(), 90u * 50u);
}

TEST(LdaTest, RecoversPlantedTopics) {
  const Corpus corpus = GenerateSyntheticCorpus(SmallCorpus());
  auto model = TrainLda(corpus, FastLda());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const LdaModel& m = model.value();
  // Each learned topic's top words should come mostly from ONE planted
  // vocabulary slice (words_per_topic = 20 -> slice = word / 20).
  int pure_topics = 0;
  std::set<int> claimed_slices;
  for (int t = 0; t < m.num_topics; ++t) {
    const auto top = m.TopWords(t, 10);
    int slice_votes[3] = {0, 0, 0};
    for (int w : top) slice_votes[w / 20]++;
    const int best_slice = static_cast<int>(
        std::max_element(slice_votes, slice_votes + 3) - slice_votes);
    if (slice_votes[best_slice] >= 8) {
      ++pure_topics;
      claimed_slices.insert(best_slice);
    }
  }
  EXPECT_GE(pure_topics, 2);
  EXPECT_GE(claimed_slices.size(), 2u);
}

TEST(LdaTest, CountsAreConserved) {
  const Corpus corpus = GenerateSyntheticCorpus(SmallCorpus());
  auto model = TrainLda(corpus, FastLda());
  ASSERT_TRUE(model.ok());
  const LdaModel& m = model.value();
  double word_topic_total = 0.0;
  for (double c : m.topic_word_counts) word_topic_total += c;
  double topic_total = 0.0;
  for (double c : m.topic_totals) topic_total += c;
  // Every token is assigned to exactly one topic at all times.
  EXPECT_NEAR(word_topic_total, static_cast<double>(corpus.total_tokens()),
              1e-6);
  EXPECT_NEAR(topic_total, static_cast<double>(corpus.total_tokens()),
              1e-6);
}

TEST(LdaTest, WordProbabilitiesNormalize) {
  const Corpus corpus = GenerateSyntheticCorpus(SmallCorpus());
  auto model = TrainLda(corpus, FastLda());
  ASSERT_TRUE(model.ok());
  const LdaModel& m = model.value();
  for (int t = 0; t < m.num_topics; ++t) {
    double total = 0.0;
    for (int w = 0; w < m.vocab_size; ++w) {
      total += m.WordProbability(t, w, 0.1);
    }
    EXPECT_NEAR(total, 1.0, 1e-6) << "topic " << t;
  }
}

TEST(LdaTest, ValidatesConfig) {
  const Corpus corpus = GenerateSyntheticCorpus(SmallCorpus());
  LdaConfig cfg = FastLda();
  cfg.num_topics = 0;
  EXPECT_FALSE(TrainLda(corpus, cfg).ok());
  cfg = FastLda();
  cfg.alpha = 0.0;
  EXPECT_FALSE(TrainLda(corpus, cfg).ok());
  EXPECT_FALSE(TrainLda(Corpus(), FastLda()).ok());
}

}  // namespace
}  // namespace hetps
