#include "sim/event_sim.h"

#include <gtest/gtest.h>

#include "core/consolidation.h"
#include "core/dyn_sgd.h"
#include "core/learning_rate.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace hetps {
namespace {

Dataset TestData() {
  SyntheticConfig cfg;
  cfg.num_examples = 300;
  cfg.num_features = 200;
  cfg.avg_nnz = 8;
  cfg.seed = 21;
  Dataset d = GenerateSynthetic(cfg);
  Rng rng(5);
  d.Shuffle(&rng);
  return d;
}

SimOptions FastOptions() {
  SimOptions opts;
  opts.max_clocks = 12;
  opts.stop_on_convergence = false;
  opts.eval_every_pushes = 10;
  opts.eval_sample = 300;
  opts.l2 = 1e-4;
  return opts;
}

TEST(EventSimTest, RunsToMaxClocksAndRecordsCurve) {
  const Dataset d = TestData();
  const ClusterConfig cluster = ClusterConfig::Homogeneous(4, 2);
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  const SimResult r =
      RunSimulation(d, cluster, rule, sched, loss, FastOptions());
  EXPECT_EQ(r.objective_per_clock.size(), 12u);
  EXPECT_EQ(r.total_pushes, 4 * 12);
  EXPECT_GT(r.total_sim_seconds, 0.0);
  EXPECT_GT(r.min_objective, 0.0);
}

TEST(EventSimTest, DeterministicForSameSeed) {
  const Dataset d = TestData();
  const ClusterConfig cluster = ClusterConfig::WithStragglers(4, 2, 2.0);
  DynSgdRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  const SimResult a =
      RunSimulation(d, cluster, rule, sched, loss, FastOptions());
  const SimResult b =
      RunSimulation(d, cluster, rule, sched, loss, FastOptions());
  ASSERT_EQ(a.objective_per_clock.size(), b.objective_per_clock.size());
  for (size_t i = 0; i < a.objective_per_clock.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.objective_per_clock[i], b.objective_per_clock[i]);
  }
  EXPECT_DOUBLE_EQ(a.total_sim_seconds, b.total_sim_seconds);
}

TEST(EventSimTest, ObjectiveDecreases) {
  const Dataset d = TestData();
  const ClusterConfig cluster = ClusterConfig::Homogeneous(4, 2);
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  SimOptions opts = FastOptions();
  opts.max_clocks = 20;
  const SimResult r = RunSimulation(d, cluster, rule, sched, loss, opts);
  EXPECT_LT(r.objective_per_clock.back(),
            0.8 * r.objective_per_clock.front());
}

TEST(EventSimTest, ConvergenceStopsEarlyAndReportsMetrics) {
  const Dataset d = TestData();
  const ClusterConfig cluster = ClusterConfig::Homogeneous(4, 2);
  ConRule rule;
  FixedRate sched(1.0);
  LogisticLoss loss;
  SimOptions opts = FastOptions();
  opts.max_clocks = 60;
  opts.stop_on_convergence = true;
  opts.objective_tolerance = 0.5;
  opts.eval_every_pushes = 4;
  const SimResult r = RunSimulation(d, cluster, rule, sched, loss, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.updates_to_converge, r.total_pushes + 1);
  EXPECT_GT(r.updates_to_converge, 0);
  EXPECT_LE(r.run_time_seconds, r.total_sim_seconds);
  EXPECT_NEAR(r.per_update_seconds,
              r.run_time_seconds /
                  static_cast<double>(r.updates_to_converge),
              1e-12);
}

TEST(EventSimTest, StragglersInflateRunTime) {
  const Dataset d = TestData();
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  SimOptions opts = FastOptions();
  opts.sync = SyncPolicy::Bsp();
  const SimResult fast = RunSimulation(
      d, ClusterConfig::WithStragglers(4, 2, 1.0), rule, sched, loss,
      opts);
  const SimResult slow = RunSimulation(
      d, ClusterConfig::WithStragglers(4, 2, 3.0), rule, sched, loss,
      opts);
  // Under BSP every clock waits for the straggler.
  EXPECT_GT(slow.total_sim_seconds, 1.8 * fast.total_sim_seconds);
}

TEST(EventSimTest, BspWorkersStayInLockstep) {
  const Dataset d = TestData();
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  SimOptions opts = FastOptions();
  opts.sync = SyncPolicy::Bsp();
  const SimResult r = RunSimulation(
      d, ClusterConfig::WithStragglers(4, 2, 4.0), rule, sched, loss,
      opts);
  // All workers completed all clocks despite the barrier.
  for (const auto& b : r.worker_breakdown) {
    EXPECT_EQ(b.clocks_completed, opts.max_clocks);
  }
  // Fast workers accumulated waiting time; the straggler did not.
  EXPECT_GT(r.worker_breakdown[0].wait_seconds,
            r.worker_breakdown[3].wait_seconds);
}

TEST(EventSimTest, AspNeverWaits) {
  const Dataset d = TestData();
  SspRule rule;
  FixedRate sched(0.01);
  LogisticLoss loss;
  SimOptions opts = FastOptions();
  opts.sync = SyncPolicy::Asp();
  const SimResult r = RunSimulation(
      d, ClusterConfig::WithStragglers(4, 2, 4.0), rule, sched, loss,
      opts);
  for (const auto& b : r.worker_breakdown) {
    EXPECT_DOUBLE_EQ(b.wait_seconds, 0.0);
  }
}

TEST(EventSimTest, BreakdownCoversComputeAndComm) {
  const Dataset d = TestData();
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  const SimResult r = RunSimulation(d, ClusterConfig::Homogeneous(3, 2),
                                    rule, sched, loss, FastOptions());
  for (const auto& b : r.worker_breakdown) {
    EXPECT_GT(b.compute_seconds, 0.0);
    EXPECT_GT(b.comm_seconds, 0.0);
    EXPECT_GT(b.PerClockCompute(), 0.0);
    EXPECT_GT(b.PerClockComm(), 0.0);
  }
}

// The comm model's push-window knob: 0 (synchronous) makes workers wait
// out every push transfer, so the run can only be slower than the
// legacy unbounded-overlap default (-1); a bounded window sits between
// them and books its overlapped transfer as push_hidden_seconds.
TEST(EventSimTest, PushWindowChargesOverlapCorrectly) {
  const Dataset d = TestData();
  const ClusterConfig cluster = ClusterConfig::WithStragglers(4, 2, 2.0);
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  auto run = [&](int window) {
    SimOptions opts = FastOptions();
    opts.push_window = window;
    return RunSimulation(d, cluster, rule, sched, loss, opts);
  };
  const SimResult legacy = run(-1);
  const SimResult sync = run(0);
  const SimResult windowed = run(1);

  auto hidden_sum = [](const SimResult& r) {
    double sum = 0.0;
    for (const auto& b : r.worker_breakdown) sum += b.push_hidden_seconds;
    return sum;
  };
  // Synchronous pushing hides nothing and can only slow the run down.
  EXPECT_DOUBLE_EQ(hidden_sum(sync), 0.0);
  EXPECT_GE(sync.total_sim_seconds, legacy.total_sim_seconds);
  EXPECT_GE(sync.total_sim_seconds, windowed.total_sim_seconds);
  // Overlapping modes actually hid transfer time.
  EXPECT_GT(hidden_sum(legacy), 0.0);
  EXPECT_GT(hidden_sum(windowed), 0.0);
  // Every mode still completes the full schedule.
  EXPECT_EQ(legacy.total_pushes, sync.total_pushes);
  EXPECT_EQ(legacy.total_pushes, windowed.total_pushes);
}

// The legacy default (-1) must leave existing simulation results
// untouched: an explicit -1 and the untouched default are the same run.
TEST(EventSimTest, PushWindowLegacyDefaultIsUnchanged) {
  const Dataset d = TestData();
  const ClusterConfig cluster = ClusterConfig::WithStragglers(4, 2, 2.0);
  DynSgdRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  SimOptions defaults = FastOptions();
  SimOptions explicit_legacy = FastOptions();
  explicit_legacy.push_window = -1;
  const SimResult a =
      RunSimulation(d, cluster, rule, sched, loss, defaults);
  const SimResult b =
      RunSimulation(d, cluster, rule, sched, loss, explicit_legacy);
  EXPECT_DOUBLE_EQ(a.total_sim_seconds, b.total_sim_seconds);
  EXPECT_DOUBLE_EQ(a.final_objective, b.final_objective);
}

TEST(EventSimTest, DynSgdReportsStalenessAndMemory) {
  const Dataset d = TestData();
  DynSgdRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  SimOptions opts = FastOptions();
  opts.sync = SyncPolicy::Ssp(2);
  const SimResult r = RunSimulation(
      d, ClusterConfig::WithStragglers(6, 2, 2.0), rule, sched, loss,
      opts);
  EXPECT_GT(r.mean_staleness, 1.0);
  EXPECT_LE(r.mean_staleness, 6.0);
  EXPECT_GT(r.peak_aux_memory_bytes, 0u);
  EXPECT_GT(r.param_memory_bytes, 0u);
}

TEST(EventSimTest, MitigationHookReceivesCallbacks) {
  class CountingMitigation : public StragglerMitigation {
   public:
    void OnClockEnd(int worker, int clock, double clock_seconds,
                    Master* master,
                    std::vector<LocalWorkerSgd*>* workers) override {
      (void)clock;
      (void)master;
      EXPECT_GE(worker, 0);
      EXPECT_GT(clock_seconds, 0.0);
      EXPECT_EQ(workers->size(), 3u);
      ++calls;
    }
    std::string name() const override { return "counting"; }
    int calls = 0;
  };
  const Dataset d = TestData();
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  CountingMitigation mitigation;
  SimOptions opts = FastOptions();
  RunSimulation(d, ClusterConfig::Homogeneous(3, 1), rule, sched, loss,
                opts, &mitigation);
  EXPECT_GT(mitigation.calls, 0);
}

TEST(EventSimTest, CongestionEpisodesSlowTheRunDeterministically) {
  const Dataset d = TestData();
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  ClusterConfig calm = ClusterConfig::Homogeneous(4, 2);
  ClusterConfig congested = calm;
  congested.congestion_probability = 0.2;
  congested.congestion_seconds = 3.0;
  const SimResult a =
      RunSimulation(d, calm, rule, sched, loss, FastOptions());
  const SimResult b =
      RunSimulation(d, congested, rule, sched, loss, FastOptions());
  const SimResult b2 =
      RunSimulation(d, congested, rule, sched, loss, FastOptions());
  EXPECT_GT(b.total_sim_seconds, a.total_sim_seconds);
  EXPECT_DOUBLE_EQ(b.total_sim_seconds, b2.total_sim_seconds);
}

TEST(EventSimTest, PeakLiveVersionsBoundedByWindow) {
  const Dataset d = TestData();
  DynSgdRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  SimOptions opts = FastOptions();
  opts.sync = SyncPolicy::Ssp(2);
  opts.eval_every_pushes = 1;
  const SimResult r = RunSimulation(
      d, ClusterConfig::WithStragglers(5, 2, 3.0), rule, sched, loss,
      opts);
  EXPECT_GE(r.peak_live_versions, 1u);
  EXPECT_LE(r.peak_live_versions, 2u + 2u);  // s + in-flight slack
}

TEST(EventSimTest, SummaryStringMentionsConvergence) {
  SimResult r;
  r.converged = true;
  r.run_time_seconds = 12.0;
  EXPECT_NE(r.Summary().find("converged"), std::string::npos);
}

TEST(EventSimLivenessTest, KilledWorkerIsEvictedAndRunCompletes) {
  // The liveness hole in simulated time: worker 3 crash-stops at clock 3
  // under SSP(3). With the heartbeat plane on, the survivors must evict
  // it, inherit its shard, and run to completion.
  const Dataset d = TestData();
  const ClusterConfig cluster = ClusterConfig::Homogeneous(4, 2);
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  SimOptions opts = FastOptions();
  opts.sync = SyncPolicy::Ssp(3);
  opts.kill_worker = 3;
  opts.kill_at_clock = 3;
  opts.heartbeat_timeout_seconds = 10.0;
  const SimResult r = RunSimulation(d, cluster, rule, sched, loss, opts);
  EXPECT_EQ(r.workers_evicted, 1);
  EXPECT_GT(r.examples_failed_over, 0);
  EXPECT_EQ(r.workers_blocked_at_end, 0);
  // The survivors all finished their clocks despite the dead peer.
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(r.worker_breakdown[static_cast<size_t>(m)].clocks_completed,
              opts.max_clocks)
        << "worker " << m;
  }
  // The victim stopped at its kill clock.
  EXPECT_LT(r.worker_breakdown[3].clocks_completed, opts.max_clocks);
}

TEST(EventSimLivenessTest, EvictionDisabledDeadlocksTheCluster) {
  // A/B control for the test above: same kill, liveness plane off. The
  // survivors exhaust the staleness window and park on the admission
  // gate until max_sim_seconds cuts the run — the demonstrated deadlock.
  const Dataset d = TestData();
  const ClusterConfig cluster = ClusterConfig::Homogeneous(4, 2);
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  SimOptions opts = FastOptions();
  opts.sync = SyncPolicy::Ssp(3);
  opts.kill_worker = 3;
  opts.kill_at_clock = 3;
  opts.heartbeat_timeout_seconds = 0.0;  // liveness plane off
  opts.max_sim_seconds = 5000.0;         // bound the stalled run
  const SimResult r = RunSimulation(d, cluster, rule, sched, loss, opts);
  EXPECT_EQ(r.workers_evicted, 0);
  EXPECT_GT(r.workers_blocked_at_end, 0);
  for (int m = 0; m < 3; ++m) {
    EXPECT_LT(r.worker_breakdown[static_cast<size_t>(m)].clocks_completed,
              opts.max_clocks)
        << "worker " << m << " should have stalled";
  }
}

TEST(EventSimLivenessTest, SuspectOnlyModeCountsButNeverEvicts) {
  const Dataset d = TestData();
  const ClusterConfig cluster = ClusterConfig::Homogeneous(4, 2);
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  SimOptions opts = FastOptions();
  opts.sync = SyncPolicy::Ssp(3);
  opts.kill_worker = 3;
  opts.kill_at_clock = 3;
  opts.heartbeat_timeout_seconds = 10.0;
  opts.evict_dead_workers = false;  // suspect, log, do nothing
  opts.max_sim_seconds = 5000.0;
  const SimResult r = RunSimulation(d, cluster, rule, sched, loss, opts);
  EXPECT_EQ(r.workers_evicted, 0);
  EXPECT_GT(r.workers_blocked_at_end, 0);
}

TEST(EventSimLivenessTest, HealthyRunEvictsNobody) {
  // No fault injected: the heartbeat plane must be inert — same curve as
  // a run without it (liveness is observability until somebody dies).
  const Dataset d = TestData();
  const ClusterConfig cluster = ClusterConfig::WithStragglers(4, 2, 3.0);
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  SimOptions plain = FastOptions();
  plain.sync = SyncPolicy::Ssp(3);
  SimOptions guarded = plain;
  // Generous timeout: a 3x straggler parked on the gate still counts as
  // alive (its standing pull request is refreshed at every sweep).
  guarded.heartbeat_timeout_seconds = 120.0;
  const SimResult a = RunSimulation(d, cluster, rule, sched, loss, plain);
  const SimResult b =
      RunSimulation(d, cluster, rule, sched, loss, guarded);
  EXPECT_EQ(b.workers_evicted, 0);
  EXPECT_EQ(b.examples_failed_over, 0);
  EXPECT_EQ(b.workers_blocked_at_end, 0);
  ASSERT_EQ(a.objective_per_clock.size(), b.objective_per_clock.size());
  for (size_t i = 0; i < a.objective_per_clock.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.objective_per_clock[i], b.objective_per_clock[i]);
  }
}

TEST(EventSimRebalanceTest, ShedsLoadOffPersistentStragglers) {
  const Dataset d = TestData();
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  const ClusterConfig cluster =
      ClusterConfig::WithStragglers(4, 2, /*hl=*/2.0, /*fraction=*/0.25);
  SimOptions plain = FastOptions();
  plain.sync = SyncPolicy::Ssp(3);
  plain.max_clocks = 24;
  SimOptions balanced = plain;
  balanced.rebalance = true;
  balanced.straggler_threshold = 1.45;
  balanced.rebalance_hysteresis = 2;
  balanced.reassign_fraction = 0.2;
  const SimResult a = RunSimulation(d, cluster, rule, sched, loss, plain);
  const SimResult b =
      RunSimulation(d, cluster, rule, sched, loss, balanced);
  // The 2x worker persistently sheds; nothing comes back (it never truly
  // recovers), and nobody is evicted — migration is not eviction.
  EXPECT_GT(b.examples_rebalanced, 0);
  EXPECT_GT(b.rebalance_migrations, 0);
  EXPECT_EQ(b.examples_returned, 0);
  EXPECT_EQ(b.workers_evicted, 0);
  // Examples only move between shards, so the run converges to the same
  // objective neighborhood as the unbalanced one...
  EXPECT_NEAR(b.final_objective, a.final_objective, 0.05);
  // ...while the straggler-paced tail gets cheaper.
  EXPECT_LT(b.total_sim_seconds, a.total_sim_seconds);
}

TEST(EventSimRebalanceTest, TransientCongestionRoundTrips) {
  // A temporary slowdown (the paper's congestion episodes, §6) must
  // trigger migration *and* the reassignment-back leg once it ends.
  const Dataset d = TestData();
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  SimOptions opts = FastOptions();
  opts.sync = SyncPolicy::Ssp(3);
  opts.max_clocks = 30;
  opts.rebalance = true;
  opts.straggler_threshold = 1.3;
  opts.rebalance_hysteresis = 2;
  opts.rebalance_recovery_windows = 2;
  opts.reassign_fraction = 0.2;
  opts.slow_worker = 1;
  opts.slow_from_clock = 2;
  opts.slow_until_clock = 10;
  opts.slow_multiplier = 3.0;
  const SimResult r = RunSimulation(
      d, ClusterConfig::Homogeneous(3, 2), rule, sched, loss, opts);
  EXPECT_GT(r.examples_rebalanced, 0);
  // The episode ends at clock 10; worker 1's true speed returns and the
  // projected-time gate lets it reclaim its loans.
  EXPECT_GT(r.examples_returned, 0);
  EXPECT_GT(r.rebalance_migrations, 0);
  EXPECT_EQ(r.workers_evicted, 0);
}

TEST(EventSimStatusTest, ServesValidSnapshotsInVirtualTime) {
  // The simulator serves the same hetps.status.v1 snapshot the live
  // service answers over kStatus — source "sim", virtual timestamps,
  // every snapshot internally consistent (cmin <= live clocks <= cmax).
  const Dataset d = TestData();
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  SimOptions opts = FastOptions();
  opts.sync = SyncPolicy::Ssp(3);
  std::vector<StatusSnapshot> snaps;
  opts.on_status = [&](const StatusSnapshot& s) { snaps.push_back(s); };
  RunSimulation(d, ClusterConfig::WithStragglers(4, 2, 2.0, 0.2), rule,
                sched, loss, opts);
  ASSERT_EQ(snaps.size(), static_cast<size_t>(opts.max_clocks));
  int64_t prev_ts = -1;
  for (const StatusSnapshot& s : snaps) {
    EXPECT_EQ(s.source, "sim");
    EXPECT_GE(s.ts_us, prev_ts);  // virtual time is monotone
    prev_ts = s.ts_us;
    EXPECT_EQ(s.num_workers, 4);
    const Status valid = ValidateStatusJson(s.ToJson());
    EXPECT_TRUE(valid.ok()) << valid.ToString();
  }
  // The snapshot counts *received* pushes: by the last probe worker 0
  // has finished max_clocks clocks but its final push is still in
  // flight, so the table shows at least max_clocks - 1.
  EXPECT_GE(snaps.back().workers[0].clock, opts.max_clocks - 1);
}

TEST(EventSimStatusTest, SnapshotSeesEvictionAndLoanState) {
  // Kill a worker with the liveness plane armed: post-eviction
  // snapshots must show 3/4 live with the victim marked dead, and keep
  // validating (the evicted clock is exempt from the window invariant).
  const Dataset d = TestData();
  ConRule rule;
  FixedRate sched(0.5);
  LogisticLoss loss;
  SimOptions opts = FastOptions();
  opts.sync = SyncPolicy::Ssp(3);
  opts.kill_worker = 3;
  opts.kill_at_clock = 3;
  opts.heartbeat_timeout_seconds = 10.0;
  std::vector<StatusSnapshot> snaps;
  opts.on_status = [&](const StatusSnapshot& s) { snaps.push_back(s); };
  RunSimulation(d, ClusterConfig::Homogeneous(4, 2), rule, sched, loss,
                opts);
  ASSERT_FALSE(snaps.empty());
  for (const StatusSnapshot& s : snaps) {
    const Status valid = ValidateStatusJson(s.ToJson());
    EXPECT_TRUE(valid.ok()) << valid.ToString();
  }
  EXPECT_EQ(snaps.back().num_live_workers, 3);
  EXPECT_FALSE(snaps.back().workers[3].live);
  // Before the kill the victim was beating like everyone else.
  EXPECT_TRUE(snaps.front().workers[3].live);
  EXPECT_EQ(snaps.front().num_live_workers, 4);
}

}  // namespace
}  // namespace hetps
