#include "sim/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hetps {
namespace {

SimResult FakeResult() {
  SimResult r;
  WorkerTimeBreakdown b;
  b.clocks_completed = 4;
  b.compute_seconds = 8.0;
  b.comm_seconds = 2.0;
  b.wait_seconds = 1.0;
  r.worker_breakdown = {b, b};
  r.objective_per_clock = {0.7, 0.5, 0.4};
  return r;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(TraceIoTest, WorkerBreakdownCsv) {
  const std::string path = testing::TempDir() + "/hetps_breakdown.csv";
  ASSERT_TRUE(WriteWorkerBreakdownCsv(FakeResult(), path).ok());
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("worker,clocks,compute_s"), std::string::npos);
  EXPECT_NE(content.find("0,4,8,2,1,2,0.5"), std::string::npos);
  EXPECT_NE(content.find("1,4,8,2,1,2,0.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceIoTest, ConvergenceCsv) {
  const std::string path = testing::TempDir() + "/hetps_curve.csv";
  ASSERT_TRUE(WriteConvergenceCsv(FakeResult(), path).ok());
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("clock,objective"), std::string::npos);
  EXPECT_NE(content.find("0,0.7"), std::string::npos);
  EXPECT_NE(content.find("2,0.4"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceIoTest, BadPathErrors) {
  EXPECT_FALSE(
      WriteWorkerBreakdownCsv(FakeResult(), "/no/such/dir/x.csv").ok());
  EXPECT_FALSE(
      WriteConvergenceCsv(FakeResult(), "/no/such/dir/x.csv").ok());
}

}  // namespace
}  // namespace hetps
