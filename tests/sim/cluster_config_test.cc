#include "sim/cluster_config.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace hetps {
namespace {

TEST(ClusterConfigTest, HomogeneousHasUnitProfiles) {
  const ClusterConfig c = ClusterConfig::Homogeneous(8, 2);
  EXPECT_EQ(c.num_workers, 8);
  EXPECT_EQ(c.num_servers, 2);
  for (int m = 0; m < 8; ++m) {
    EXPECT_DOUBLE_EQ(c.profile(m).compute_multiplier, 1.0);
    EXPECT_DOUBLE_EQ(c.profile(m).network_multiplier, 1.0);
  }
  EXPECT_DOUBLE_EQ(c.HeterogeneityLevel(1.0, 0.1), 1.0);
}

TEST(ClusterConfigTest, WithStragglersSlowsTailFraction) {
  const ClusterConfig c = ClusterConfig::WithStragglers(
      10, 2, /*hl=*/3.0, /*fraction=*/0.2);
  int slowed = 0;
  for (int m = 0; m < 10; ++m) {
    if (c.profile(m).compute_multiplier > 1.0) {
      ++slowed;
      EXPECT_DOUBLE_EQ(c.profile(m).compute_multiplier, 3.0);
      EXPECT_GE(m, 8);  // stragglers taken from the tail
    }
  }
  EXPECT_EQ(slowed, 2);
}

TEST(ClusterConfigTest, StragglerKindSelectsResource) {
  const ClusterConfig net = ClusterConfig::WithStragglers(
      5, 1, 2.0, 0.2, ClusterConfig::StragglerKind::kNetwork);
  EXPECT_DOUBLE_EQ(net.profile(4).compute_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(net.profile(4).network_multiplier, 2.0);
  const ClusterConfig both = ClusterConfig::WithStragglers(
      5, 1, 2.0, 0.2, ClusterConfig::StragglerKind::kBoth);
  EXPECT_DOUBLE_EQ(both.profile(4).compute_multiplier, 2.0);
  EXPECT_DOUBLE_EQ(both.profile(4).network_multiplier, 2.0);
}

TEST(ClusterConfigTest, HeterogeneityLevelMatchesEq1) {
  const ClusterConfig c = ClusterConfig::WithStragglers(10, 2, 2.0, 0.2);
  // Pure compute stragglers: with zero comm weight HL equals the
  // multiplier; mixing in communication time dilutes it.
  EXPECT_DOUBLE_EQ(c.HeterogeneityLevel(1.0, 0.0), 2.0);
  EXPECT_LT(c.HeterogeneityLevel(1.0, 0.5), 2.0);
  EXPECT_GT(c.HeterogeneityLevel(1.0, 0.5), 1.0);
}

TEST(ClusterConfigTest, NaturalProductionSpreadsSpeeds) {
  const ClusterConfig c = ClusterConfig::NaturalProduction(30, 10, 7);
  double lo = 1e9;
  double hi = 0.0;
  for (int m = 0; m < 30; ++m) {
    lo = std::min(lo, c.profile(m).compute_multiplier);
    hi = std::max(hi, c.profile(m).compute_multiplier);
    EXPECT_GT(c.profile(m).jitter_sigma, 0.0);
  }
  const double ratio = hi / lo;
  // Figure 6: fastest worker roughly 2x the slowest.
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 4.0);
}

TEST(ClusterConfigTest, NaturalProductionDeterministicPerSeed) {
  const ClusterConfig a = ClusterConfig::NaturalProduction(5, 2, 3);
  const ClusterConfig b = ClusterConfig::NaturalProduction(5, 2, 3);
  for (int m = 0; m < 5; ++m) {
    EXPECT_DOUBLE_EQ(a.profile(m).compute_multiplier,
                     b.profile(m).compute_multiplier);
  }
  const ClusterConfig c = ClusterConfig::NaturalProduction(5, 2, 4);
  bool differs = false;
  for (int m = 0; m < 5; ++m) {
    differs = differs || a.profile(m).compute_multiplier !=
                             c.profile(m).compute_multiplier;
  }
  EXPECT_TRUE(differs);
}

TEST(ClusterConfigDeathTest, Validates) {
  EXPECT_DEATH(ClusterConfig::Homogeneous(0, 1), "worker");
  EXPECT_DEATH(ClusterConfig::Homogeneous(1, 0), "server");
  EXPECT_DEATH(ClusterConfig::WithStragglers(4, 1, 0.5), ">= 1");
  EXPECT_DEATH(ClusterConfig::WithStragglers(4, 1, 2.0, 1.5),
               "fraction");
}

}  // namespace
}  // namespace hetps
