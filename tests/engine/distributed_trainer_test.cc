#include "engine/distributed_trainer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>

#include "core/consolidation.h"
#include "core/dyn_sgd.h"
#include "core/learning_rate.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace hetps {
namespace {

Dataset DistData() {
  SyntheticConfig cfg;
  cfg.num_examples = 400;
  cfg.num_features = 150;
  cfg.avg_nnz = 8;
  cfg.seed = 51;
  Dataset d = GenerateSynthetic(cfg);
  Rng rng(52);
  d.Shuffle(&rng);
  return d;
}

DistributedTrainerOptions FastOptions() {
  DistributedTrainerOptions opts;
  opts.num_workers = 3;
  opts.num_servers = 2;
  opts.max_clocks = 10;
  opts.eval_sample = 400;
  opts.sync = SyncPolicy::Ssp(2);
  return opts;
}

TEST(DistributedTrainerTest, TrainsOverTheBus) {
  const Dataset d = DistData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;
  auto result = TrainDistributed(d, loss, sched, rule, FastOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result.value().final_objective, 0.5);
  EXPECT_EQ(result.value().objective_per_clock.size(), 10u);
  EXPECT_GT(result.value().messages, 3 * 10);
  EXPECT_EQ(result.value().next_clock, 10);
}

TEST(DistributedTrainerTest, CheckpointAndResumeContinuesTraining) {
  const Dataset d = DistData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;
  DistributedTrainerOptions opts = FastOptions();
  opts.max_clocks = 6;
  opts.checkpoint_every_clocks = 6;
  opts.checkpoint_path =
      testing::TempDir() + "/hetps_dist_resume.ckpt";
  auto phase1 = TrainDistributed(d, loss, sched, rule, opts);
  ASSERT_TRUE(phase1.ok()) << phase1.status().ToString();
  const double mid = phase1.value().final_objective;

  DistributedTrainerOptions resume = opts;
  resume.resume = true;
  resume.resume_clock = phase1.value().next_clock;
  resume.checkpoint_every_clocks = 0;
  auto phase2 = TrainDistributed(d, loss, sched, rule, resume);
  ASSERT_TRUE(phase2.ok()) << phase2.status().ToString();
  EXPECT_LT(phase2.value().final_objective, mid);
  std::remove(opts.checkpoint_path.c_str());
}

TEST(DistributedTrainerTest, ResumeWithoutCheckpointFails) {
  const Dataset d = DistData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  SspRule rule;
  DistributedTrainerOptions opts = FastOptions();
  opts.resume = true;
  opts.checkpoint_path = "/no/such/checkpoint.ckpt";
  EXPECT_FALSE(TrainDistributed(d, loss, sched, rule, opts).ok());
}

TEST(DistributedTrainerTest, ValidatesOptions) {
  const Dataset d = DistData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  SspRule rule;
  DistributedTrainerOptions opts = FastOptions();
  opts.num_workers = 0;
  EXPECT_FALSE(TrainDistributed(d, loss, sched, rule, opts).ok());
  opts = FastOptions();
  opts.max_clocks = 0;
  EXPECT_FALSE(TrainDistributed(d, loss, sched, rule, opts).ok());
  EXPECT_FALSE(
      TrainDistributed(Dataset(), loss, sched, rule, FastOptions())
          .ok());
}

TEST(DistributedTrainerTest, ConvergesOnALossyBus) {
  // End-to-end robustness check: a seeded fault plan drops >= 10% of
  // messages (both request and response legs) and injects delays and
  // duplicates, yet retry/backoff plus server-side push dedup deliver
  // the same convergence quality as the clean run.
  const Dataset d = DistData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;
  DistributedTrainerOptions opts = FastOptions();
  opts.fault_plan.drop_request_prob = 0.10;
  opts.fault_plan.drop_response_prob = 0.05;
  opts.fault_plan.duplicate_prob = 0.05;
  opts.fault_plan.delay_prob = 0.10;
  opts.fault_plan.seed = 77;
  opts.rpc_retry.timeout = std::chrono::milliseconds(10);
  opts.rpc_retry.max_attempts = 40;
  opts.rpc_retry.initial_backoff = std::chrono::microseconds(100);

  auto result = TrainDistributed(d, loss, sched, rule, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Same tolerance as the no-fault run above.
  EXPECT_LT(result.value().final_objective, 0.5);
  EXPECT_EQ(result.value().next_clock, 10);
  // The plan actually fired and the clients actually retried.
  EXPECT_GT(result.value().faults.dropped_requests, 0);
  EXPECT_GT(result.value().faults.total(), 0);
  EXPECT_GT(result.value().rpc_retries, 0);
}

TEST(DistributedTrainerTest, DeltaPullMatchesFullPullOnALossyBus) {
  // Cache coherence must not change learning semantics. With a single
  // worker both runs are step-deterministic (each RPC blocks, pushes
  // dedup, and PullCached is bit-identical to Pull), so the final
  // objective must match exactly even on a faulty bus.
  const Dataset d = DistData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;
  double final_obj[2] = {0.0, 0.0};
  for (int delta = 0; delta <= 1; ++delta) {
    DistributedTrainerOptions opts = FastOptions();
    opts.num_workers = 1;
    opts.delta_pull = delta != 0;
    opts.fault_plan.drop_request_prob = 0.10;
    opts.fault_plan.drop_response_prob = 0.05;
    opts.fault_plan.duplicate_prob = 0.05;
    opts.fault_plan.seed = 41;
    opts.rpc_retry.timeout = std::chrono::milliseconds(10);
    opts.rpc_retry.max_attempts = 40;
    opts.rpc_retry.initial_backoff = std::chrono::microseconds(100);
    auto result = TrainDistributed(d, loss, sched, rule, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    final_obj[delta] = result.value().final_objective;
  }
  EXPECT_DOUBLE_EQ(final_obj[0], final_obj[1]);
}

TEST(DistributedTrainerTest, MatchesSharedMemoryRuntimeQuality) {
  // The RPC path and the shared-memory path run the same algorithm and
  // must land in the same quality regime.
  const Dataset d = DistData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  ConRule rule;
  auto rpc = TrainDistributed(d, loss, sched, rule, FastOptions());
  ASSERT_TRUE(rpc.ok());
  EXPECT_LT(rpc.value().final_objective, 0.5);
}

TEST(DistributedTrainerTest, RebalanceShedsLoadOffInjectedStraggler) {
  // The paper's slowdown-injection protocol on the RPC runtime: worker 0
  // sleeps 30ms of extra "compute" per clock, the others run free. With
  // the load-balancing plane on, its measured clock reports flag it and
  // the entitlement plane migrates examples to the fast workers at clock
  // boundaries.
  const Dataset d = DistData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;
  DistributedTrainerOptions opts = FastOptions();
  opts.max_clocks = 12;
  opts.rebalance = true;
  opts.straggler_threshold = 1.5;
  opts.rebalance_hysteresis = 2;
  opts.reassign_fraction = 0.2;
  opts.injected_compute_delay = {0.03};  // zero-padded for workers 1, 2
  auto result = TrainDistributed(d, loss, sched, rule, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().examples_rebalanced, 0);
  EXPECT_GT(result.value().lb_migrations, 0);
  // Rebalancing must not cost convergence or evict anyone.
  EXPECT_LT(result.value().final_objective, 0.5);
  EXPECT_TRUE(result.value().evicted_workers.empty());
  EXPECT_EQ(result.value().next_clock, 12);
}

TEST(DistributedTrainerTest, RebalanceOffLeavesShardsAlone) {
  const Dataset d = DistData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;
  DistributedTrainerOptions opts = FastOptions();
  opts.injected_compute_delay = {0.02};
  auto result = TrainDistributed(d, loss, sched, rule, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().examples_rebalanced, 0);
  EXPECT_EQ(result.value().examples_returned, 0);
  EXPECT_EQ(result.value().lb_migrations, 0);
}

}  // namespace
}  // namespace hetps
