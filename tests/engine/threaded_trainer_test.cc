#include "engine/threaded_trainer.h"

#include <gtest/gtest.h>

#include "core/consolidation.h"
#include "core/dyn_sgd.h"
#include "core/learning_rate.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace hetps {
namespace {

Dataset TrainData() {
  SyntheticConfig cfg;
  cfg.num_examples = 400;
  cfg.num_features = 150;
  cfg.avg_nnz = 8;
  cfg.seed = 33;
  Dataset d = GenerateSynthetic(cfg);
  Rng rng(2);
  d.Shuffle(&rng);
  return d;
}

ThreadedTrainerOptions FastOptions(int workers) {
  ThreadedTrainerOptions opts;
  opts.num_workers = workers;
  opts.num_servers = 2;
  opts.max_clocks = 8;
  opts.eval_sample = 400;
  return opts;
}

TEST(ThreadedTrainerTest, TrainsAndReducesObjective) {
  const Dataset d = TrainData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;
  const ThreadedTrainResult r =
      TrainThreaded(d, loss, sched, rule, FastOptions(3));
  ASSERT_EQ(r.weights.size(), static_cast<size_t>(d.dimension()));
  ASSERT_EQ(r.objective_per_clock.size(), 8u);
  EXPECT_LT(r.final_objective, r.objective_per_clock.front());
  EXPECT_EQ(r.total_pushes, 3 * 8);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(ThreadedTrainerTest, WorksUnderEveryProtocol) {
  const Dataset d = TrainData();
  LogisticLoss loss;
  FixedRate sched(0.3);
  ConRule rule;
  for (SyncPolicy sync :
       {SyncPolicy::Bsp(), SyncPolicy::Asp(), SyncPolicy::Ssp(2)}) {
    ThreadedTrainerOptions opts = FastOptions(4);
    opts.sync = sync;
    const ThreadedTrainResult r = TrainThreaded(d, loss, sched, rule, opts);
    EXPECT_LT(r.final_objective, 0.7) << sync.DebugString();
  }
}

TEST(ThreadedTrainerTest, SleepInjectionSlowsWallClock) {
  const Dataset d = TrainData();
  LogisticLoss loss;
  FixedRate sched(0.3);
  ConRule rule;
  ThreadedTrainerOptions opts = FastOptions(2);
  opts.max_clocks = 4;
  const ThreadedTrainResult fast = TrainThreaded(d, loss, sched, rule, opts);
  opts.worker_sleep_seconds = {0.0, 0.03};
  opts.sync = SyncPolicy::Bsp();
  const ThreadedTrainResult slow = TrainThreaded(d, loss, sched, rule, opts);
  EXPECT_GT(slow.wall_seconds, fast.wall_seconds + 0.05);
}

TEST(ThreadedTrainerTest, PartitionSyncWithDeferredDynSgd) {
  const Dataset d = TrainData();
  LogisticLoss loss;
  FixedRate sched(0.3);
  DynSgdRule::Options dyn_opts;
  dyn_opts.mode = DynSgdRule::ApplyMode::kDeferred;
  DynSgdRule rule(dyn_opts);
  ThreadedTrainerOptions opts = FastOptions(3);
  opts.partition_sync = true;
  const ThreadedTrainResult r = TrainThreaded(d, loss, sched, rule, opts);
  EXPECT_LT(r.final_objective, 0.7);
}

TEST(ThreadedTrainerTest, SingleWorkerMatchesSequentialSgd) {
  const Dataset d = TrainData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  SspRule rule;
  ThreadedTrainerOptions opts = FastOptions(1);
  opts.num_servers = 1;
  const ThreadedTrainResult r = TrainThreaded(d, loss, sched, rule, opts);
  // One worker, accumulate rule: the PS state equals the worker replica,
  // i.e. plain sequential mini-batch SGD.
  EXPECT_LT(r.final_objective, 0.5);
}

TEST(ThreadedTrainerTest, PrefetchingTrainsComparably) {
  const Dataset d = TrainData();
  LogisticLoss loss;
  FixedRate sched(0.3);
  DynSgdRule rule;
  ThreadedTrainerOptions opts = FastOptions(4);
  opts.sync = SyncPolicy::Ssp(2);
  opts.max_clocks = 12;
  const ThreadedTrainResult plain = TrainThreaded(d, loss, sched, rule, opts);
  opts.prefetch = true;
  const ThreadedTrainResult fetched =
      TrainThreaded(d, loss, sched, rule, opts);
  // Prefetching trades a slightly staler replica for overlap; quality
  // must stay in the same regime.
  EXPECT_LT(fetched.final_objective, plain.final_objective + 0.1);
  EXPECT_LT(fetched.final_objective, 0.5);
}

TEST(ThreadedTrainerDeathTest, ValidatesSleepVector) {
  const Dataset d = TrainData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  SspRule rule;
  ThreadedTrainerOptions opts = FastOptions(3);
  opts.worker_sleep_seconds = {0.0};  // wrong size
  EXPECT_DEATH(TrainThreaded(d, loss, sched, rule, opts), "mismatch");
}

}  // namespace
}  // namespace hetps
