#include "engine/grid_search.h"

#include <gtest/gtest.h>

#include "core/consolidation.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace hetps {
namespace {

Dataset GridData() {
  SyntheticConfig cfg;
  cfg.num_examples = 250;
  cfg.num_features = 120;
  cfg.avg_nnz = 6;
  cfg.seed = 77;
  Dataset d = GenerateSynthetic(cfg);
  Rng rng(4);
  d.Shuffle(&rng);
  return d;
}

SimOptions GridOptions() {
  SimOptions opts;
  opts.max_clocks = 10;
  opts.eval_every_pushes = 4;
  opts.eval_sample = 250;
  opts.objective_tolerance = 0.45;
  return opts;
}

TEST(GridSearchTest, EvaluatesEveryCandidate) {
  const Dataset d = GridData();
  const ClusterConfig cluster = ClusterConfig::Homogeneous(3, 1);
  ConRule rule;
  LogisticLoss loss;
  const GridSearchResult r = GridSearchLearningRate(
      d, cluster, rule, loss, GridOptions(), {0.1, 0.5, 1.0});
  EXPECT_EQ(r.all.size(), 3u);
}

TEST(GridSearchTest, AlsoDecayedDoublesCandidates) {
  const Dataset d = GridData();
  const ClusterConfig cluster = ClusterConfig::Homogeneous(3, 1);
  ConRule rule;
  LogisticLoss loss;
  const GridSearchResult r = GridSearchLearningRate(
      d, cluster, rule, loss, GridOptions(), {0.1, 0.5},
      /*also_decayed=*/true);
  EXPECT_EQ(r.all.size(), 4u);
  int decayed = 0;
  for (const auto& p : r.all) {
    if (p.decayed) ++decayed;
  }
  EXPECT_EQ(decayed, 2);
}

TEST(GridSearchTest, PrefersConvergedOverNot) {
  const Dataset d = GridData();
  const ClusterConfig cluster = ClusterConfig::Homogeneous(3, 1);
  ConRule rule;
  LogisticLoss loss;
  // 1e-6 cannot converge within 10 clocks; 1.0 can.
  const GridSearchResult r = GridSearchLearningRate(
      d, cluster, rule, loss, GridOptions(), {1e-6, 1.0});
  EXPECT_TRUE(r.best.result.converged);
  EXPECT_DOUBLE_EQ(r.best.sigma, 1.0);
}

TEST(GridSearchTest, FallsBackToLowestObjective) {
  const Dataset d = GridData();
  const ClusterConfig cluster = ClusterConfig::Homogeneous(3, 1);
  ConRule rule;
  LogisticLoss loss;
  SimOptions opts = GridOptions();
  opts.objective_tolerance = 1e-9;  // unreachable
  const GridSearchResult r = GridSearchLearningRate(
      d, cluster, rule, loss, opts, {1e-6, 0.5});
  EXPECT_FALSE(r.best.result.converged);
  EXPECT_DOUBLE_EQ(r.best.sigma, 0.5);  // descends further
}

TEST(GridSearchTest, DefaultGridsAreOrdered) {
  for (const auto& grid :
       {DefaultSigmaGridSmall(), DefaultSigmaGridLarge()}) {
    ASSERT_GE(grid.size(), 2u);
    for (size_t i = 1; i < grid.size(); ++i) {
      EXPECT_LT(grid[i - 1], grid[i]);
    }
  }
}

TEST(GridSearchDeathTest, RejectsEmptyGrid) {
  const Dataset d = GridData();
  const ClusterConfig cluster = ClusterConfig::Homogeneous(2, 1);
  ConRule rule;
  LogisticLoss loss;
  EXPECT_DEATH(GridSearchLearningRate(d, cluster, rule, loss,
                                      GridOptions(), {}),
               "empty sigma grid");
}

}  // namespace
}  // namespace hetps
