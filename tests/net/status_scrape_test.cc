// The observer-effect contract of the introspection plane: a scraper
// thread hammering kStatus / kMetricsScrape while workers push, pull,
// evict, and readmit must (a) never trip TSan (this file runs under the
// tsan CI leg) and (b) see an internally consistent snapshot on every
// single scrape — cmin <= every live worker clock <= cmax, which is
// exactly what ValidateStatusJson enforces.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dyn_sgd.h"
#include "net/ps_service.h"
#include "net/serializer.h"
#include "ps/status.h"

namespace hetps {
namespace {

constexpr std::chrono::microseconds kRpcTimeout =
    std::chrono::seconds(5);

TEST(StatusScrapeTest, ScraperSeesConsistentWindowUnderChurn) {
  SspRule rule;
  PsOptions opts;
  opts.num_servers = 2;
  opts.partitions_per_server = 2;
  opts.sync = SyncPolicy::Ssp(3);
  MessageBus bus;
  ParameterServer ps(32, 4, rule, opts);
  PsService service(&ps, &bus, "ps");
  ASSERT_TRUE(service.status().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> scrape_failures{0};
  std::atomic<int> scrapes{0};
  std::mutex err_mu;
  std::string first_error;

  auto note_failure = [&](const std::string& what) {
    scrape_failures.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(err_mu);
    if (first_error.empty()) first_error = what;
  };

  // Workers 0-2: a steady push/pull grind that keeps the clock frontier
  // moving (no admission gate — the scraper must stay consistent at any
  // staleness, not just within the SSP bound).
  auto grinder = [&](int m) {
    RpcWorkerClient client(m, &bus, "ps");
    int clock = 0;
    while (!stop.load(std::memory_order_acquire)) {
      (void)client.Push(clock++,
                        SparseVector({static_cast<int64_t>(m)}, {0.01}));
      std::vector<double> replica;
      int cmin = -1;
      (void)client.Pull(&replica, &cmin);
    }
  };

  // Worker 3: same grind, but periodically evicts itself (standing in
  // for the liveness plane's sweep) and rejoins at the clock frontier
  // over the wire (kReadmit) — churning exactly the membership state the
  // snapshot reads.
  auto churner = [&] {
    RpcWorkerClient client(3, &bus, "ps");
    int clock = 0;
    int iter = 0;
    while (!stop.load(std::memory_order_acquire)) {
      (void)client.Push(clock++,
                        SparseVector({int64_t{3}}, {0.01}));
      if (++iter % 5 == 0 && ps.EvictWorker(3)) {
        while (!stop.load(std::memory_order_acquire)) {
          const int frontier = ps.cmax();
          if (client.Readmit(frontier).ok()) {
            clock = frontier;
            break;
          }
        }
      }
    }
  };

  // The scraper: raw kStatus and kMetricsScrape frames over the bus,
  // from an endpoint the service has never heard of (statusz tools are
  // not cluster members). Every status body must validate.
  auto scraper = [&] {
    int mode = 0;
    while (!stop.load(std::memory_order_acquire)) {
      BusReply reply = bus.BlockingCall(
          "scraper", "ps",
          {static_cast<uint8_t>(PsOpCode::kStatus)}, kRpcTimeout);
      if (!reply.ok()) {
        note_failure("kStatus rpc: " + reply.status.ToString());
        continue;
      }
      ByteReader reader(reply.payload);
      uint8_t code = 1;
      std::string body;
      if (!reader.ReadU8(&code).ok() || code != 0 ||
          !reader.ReadString(&body).ok()) {
        note_failure("kStatus: bad response framing");
        continue;
      }
      const Status valid = ValidateStatusJson(body);
      if (!valid.ok()) {
        note_failure(valid.ToString() + " in " + body);
      }
      // Alternate full Prometheus scrapes with cumulative deltas so both
      // kMetricsScrape modes run against the same churn.
      BusReply scrape = bus.BlockingCall(
          "scraper", "ps",
          {static_cast<uint8_t>(PsOpCode::kMetricsScrape),
           static_cast<uint8_t>(mode)},
          kRpcTimeout);
      mode = 1 - mode;
      if (!scrape.ok()) {
        note_failure("kMetricsScrape rpc: " + scrape.status.ToString());
        continue;
      }
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  for (int m = 0; m < 3; ++m) threads.emplace_back(grinder, m);
  threads.emplace_back(churner);
  threads.emplace_back(scraper);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_GT(scrapes.load(), 10) << "scraper barely ran";
  EXPECT_EQ(scrape_failures.load(), 0) << first_error;
}

}  // namespace
}  // namespace hetps
