#include "net/message_bus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

namespace hetps {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr microseconds kForever{0};

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> v) {
  return std::vector<uint8_t>(v);
}

TEST(MessageBusTest, OneWayDelivery) {
  MessageBus bus;
  std::atomic<int> received{0};
  ASSERT_TRUE(bus.RegisterEndpoint("sink",
                                   [&](const Envelope& e) {
                                     received.fetch_add(
                                         static_cast<int>(e.payload[0]));
                                     return std::vector<uint8_t>{};
                                   })
                  .ok());
  ASSERT_TRUE(bus.Send("src", "sink", Bytes({5})).ok());
  ASSERT_TRUE(bus.Send("src", "sink", Bytes({7})).ok());
  bus.Flush();
  EXPECT_EQ(received.load(), 12);
  EXPECT_EQ(bus.delivered_count(), 2);
}

TEST(MessageBusTest, RequestResponse) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("echo",
                                   [](const Envelope& e) {
                                     std::vector<uint8_t> out = e.payload;
                                     out.push_back(99);
                                     return out;
                                   })
                  .ok());
  BusReply reply = bus.BlockingCall("client", "echo", Bytes({1, 2}),
                                    kForever);
  ASSERT_TRUE(reply.ok()) << reply.status.ToString();
  EXPECT_EQ(reply.payload, Bytes({1, 2, 99}));
  EXPECT_EQ(bus.pending_call_count(), 0u);
}

TEST(MessageBusTest, UnknownEndpointIsNotFound) {
  MessageBus bus;
  EXPECT_TRUE(bus.Send("a", "nope", {}).IsNotFound());
  EXPECT_TRUE(bus.Call("a", "nope", {}).status().IsNotFound());
}

TEST(MessageBusTest, DuplicateEndpointRejected) {
  MessageBus bus;
  auto handler = [](const Envelope&) { return std::vector<uint8_t>{}; };
  ASSERT_TRUE(bus.RegisterEndpoint("x", handler).ok());
  EXPECT_EQ(bus.RegisterEndpoint("x", handler).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(bus.RegisterEndpoint("y", nullptr).ok());
}

TEST(MessageBusTest, HandlersOfOneEndpointRunSequentially) {
  MessageBus bus;
  std::vector<int> order;  // guarded by sequential execution itself
  ASSERT_TRUE(bus.RegisterEndpoint("seq",
                                   [&](const Envelope& e) {
                                     order.push_back(e.payload[0]);
                                     return std::vector<uint8_t>{};
                                   })
                  .ok());
  for (uint8_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(bus.Send("src", "seq", Bytes({i})).ok());
  }
  bus.Flush();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);  // FIFO, no interleave
  }
}

TEST(MessageBusTest, EndpointsRunConcurrently) {
  // A request to endpoint B issued from inside endpoint A's handler must
  // complete (would deadlock if all endpoints shared one thread).
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("b",
                                   [](const Envelope&) {
                                     return Bytes({42});
                                   })
                  .ok());
  ASSERT_TRUE(bus.RegisterEndpoint(
                     "a",
                     [&](const Envelope&) {
                       BusReply r =
                           bus.BlockingCall("a", "b", {}, kForever);
                       return r.ok() ? r.payload
                                     : std::vector<uint8_t>{};
                     })
                  .ok());
  BusReply reply = bus.BlockingCall("client", "a", {}, kForever);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.payload, Bytes({42}));
}

TEST(MessageBusTest, ManyConcurrentCallers) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("sum",
                                   [](const Envelope& e) {
                                     std::vector<uint8_t> out = {
                                         static_cast<uint8_t>(
                                             e.payload[0] + 1)};
                                     return out;
                                   })
                  .ok());
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&bus, &ok, t] {
      for (uint8_t i = 0; i < 20; ++i) {
        BusReply r = bus.BlockingCall("c" + std::to_string(t), "sum",
                                      Bytes({i}), kForever);
        if (r.ok() && r.payload[0] == i + 1) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 8 * 20);
}

// --- Shutdown correctness ----------------------------------------------

TEST(MessageBusTest, ShutdownFailsPendingCalls) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("sink", [](const Envelope&) {
                   return std::vector<uint8_t>{};
                 }).ok());
  // Drop every request so the call can never be answered.
  FaultPlan plan;
  plan.drop_request_prob = 1.0;
  bus.SetFaultPlan(plan);
  auto call = bus.Call("c", "sink", Bytes({1}));
  ASSERT_TRUE(call.ok());
  EXPECT_EQ(bus.pending_call_count(), 1u);
  bus.Shutdown();
  // The promise was failed, not broken: Await returns a clean error.
  BusReply reply = bus.Await(&call.value(), kForever);
  EXPECT_TRUE(reply.status.IsAborted()) << reply.status.ToString();
  EXPECT_EQ(bus.pending_call_count(), 0u);
  // Traffic after shutdown is refused, not lost silently.
  EXPECT_TRUE(bus.Send("c", "sink", {}).IsFailedPrecondition());
  EXPECT_TRUE(bus.Call("c", "sink", {}).status().IsFailedPrecondition());
}

TEST(MessageBusTest, DestructionResolvesOutstandingFutures) {
  // The future outlives the bus: the destructor must have resolved it
  // (no std::future_error / broken_promise).
  PendingCall call;
  {
    MessageBus bus;
    ASSERT_TRUE(bus.RegisterEndpoint("sink", [](const Envelope&) {
                     return std::vector<uint8_t>{};
                   }).ok());
    FaultPlan plan;
    plan.drop_request_prob = 1.0;
    bus.SetFaultPlan(plan);
    auto c = bus.Call("c", "sink", {});
    ASSERT_TRUE(c.ok());
    call = std::move(c.value());
  }
  BusReply reply = call.reply.get();
  EXPECT_TRUE(reply.status.IsAborted());
}

TEST(MessageBusTest, CallsRacingShutdownAlwaysResolve) {
  // Callers hammering the bus while another thread shuts it down must
  // each get a definite outcome: reply, Aborted, or refused call.
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("svc", [](const Envelope& e) {
                   return e.payload;
                 }).ok());
  std::atomic<int> resolved{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bus, &resolved] {
      for (int i = 0; i < 200; ++i) {
        auto call = bus.Call("c", "svc", Bytes({7}));
        if (!call.ok()) {
          EXPECT_TRUE(call.status().IsFailedPrecondition());
          ++resolved;
          continue;
        }
        BusReply reply = bus.Await(&call.value(), kForever);
        EXPECT_TRUE(reply.ok() || reply.status.IsAborted())
            << reply.status.ToString();
        ++resolved;
      }
    });
  }
  std::this_thread::sleep_for(milliseconds(2));
  bus.Shutdown();
  for (auto& t : threads) t.join();
  EXPECT_EQ(resolved.load(), 4 * 200);
  EXPECT_EQ(bus.pending_call_count(), 0u);
}

TEST(MessageBusTest, ShutdownIsIdempotentAndRaceSafe) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("svc", [](const Envelope&) {
                   return std::vector<uint8_t>{};
                 }).ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bus] { bus.Shutdown(); });
  }
  for (auto& t : threads) t.join();
  bus.Shutdown();  // and once more for good measure
  SUCCEED();
}

// --- Fault injection ---------------------------------------------------

TEST(MessageBusTest, AwaitTimesOutOnDroppedRequestAndReapsEntry) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("svc", [](const Envelope&) {
                   return Bytes({1});
                 }).ok());
  FaultPlan plan;
  plan.drop_request_prob = 1.0;
  bus.SetFaultPlan(plan);
  BusReply reply =
      bus.BlockingCall("c", "svc", Bytes({1}), milliseconds(2));
  EXPECT_TRUE(reply.status.IsDeadlineExceeded())
      << reply.status.ToString();
  EXPECT_EQ(bus.pending_call_count(), 0u);  // reaped, no leak
  EXPECT_EQ(bus.fault_stats().dropped_requests, 1);
  EXPECT_EQ(bus.delivered_count(), 0);
}

TEST(MessageBusTest, DroppedResponseStillRunsHandler) {
  MessageBus bus;
  std::atomic<int> handled{0};
  ASSERT_TRUE(bus.RegisterEndpoint("svc",
                                   [&](const Envelope&) {
                                     ++handled;
                                     return Bytes({1});
                                   })
                  .ok());
  FaultPlan plan;
  plan.drop_response_prob = 1.0;
  bus.SetFaultPlan(plan);
  BusReply reply =
      bus.BlockingCall("c", "svc", Bytes({1}), milliseconds(2));
  EXPECT_TRUE(reply.status.IsDeadlineExceeded());
  bus.Flush();
  // The at-least-once hazard: side effects happened, reply vanished.
  EXPECT_EQ(handled.load(), 1);
  EXPECT_EQ(bus.fault_stats().dropped_responses, 1);
  EXPECT_EQ(bus.pending_call_count(), 0u);
}

TEST(MessageBusTest, DuplicatedRequestDeliveredTwice) {
  MessageBus bus;
  std::atomic<int> handled{0};
  ASSERT_TRUE(bus.RegisterEndpoint("svc",
                                   [&](const Envelope&) {
                                     ++handled;
                                     return std::vector<uint8_t>{};
                                   })
                  .ok());
  FaultPlan plan;
  plan.duplicate_prob = 1.0;
  bus.SetFaultPlan(plan);
  ASSERT_TRUE(bus.Send("c", "svc", Bytes({1})).ok());
  bus.Flush();
  EXPECT_EQ(handled.load(), 2);
  EXPECT_EQ(bus.delivered_count(), 2);
  EXPECT_EQ(bus.fault_stats().duplicated_requests, 1);
}

TEST(MessageBusTest, DuplicatedCallResolvesOnceCleanly) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("svc", [](const Envelope& e) {
                   return e.payload;
                 }).ok());
  FaultPlan plan;
  plan.duplicate_prob = 1.0;
  bus.SetFaultPlan(plan);
  BusReply reply = bus.BlockingCall("c", "svc", Bytes({9}), kForever);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.payload, Bytes({9}));
  bus.Flush();  // second copy's reply is discarded without incident
  EXPECT_EQ(bus.pending_call_count(), 0u);
}

TEST(MessageBusTest, DelayedDeliveryStillArrives) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("svc", [](const Envelope& e) {
                   return e.payload;
                 }).ok());
  FaultPlan plan;
  plan.delay_prob = 1.0;
  plan.delay_min_us = 100;
  plan.delay_max_us = 300;
  bus.SetFaultPlan(plan);
  BusReply reply = bus.BlockingCall("c", "svc", Bytes({5}), kForever);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.payload, Bytes({5}));
  EXPECT_EQ(bus.fault_stats().delayed_requests, 1);
}

TEST(MessageBusTest, FaultScheduleIsDeterministic) {
  auto run = [](uint64_t seed) {
    MessageBus bus;
    EXPECT_TRUE(bus.RegisterEndpoint("svc", [](const Envelope&) {
                     return std::vector<uint8_t>{};
                   }).ok());
    FaultPlan plan;
    plan.drop_request_prob = 0.3;
    plan.seed = seed;
    bus.SetFaultPlan(plan);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(bus.Send("c", "svc", {}).ok());
    }
    bus.Flush();
    return bus.fault_stats().dropped_requests;
  };
  const int64_t a = run(1234);
  EXPECT_GT(a, 0);
  EXPECT_LT(a, 100);
  EXPECT_EQ(a, run(1234));   // same seed, same schedule
  EXPECT_NE(a, run(99999));  // different seed, different schedule
}

TEST(MessageBusTest, LateReplyAfterDeadlineIsDiscarded) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("slow",
                                   [](const Envelope&) {
                                     std::this_thread::sleep_for(
                                         milliseconds(20));
                                     return Bytes({1});
                                   })
                  .ok());
  BusReply reply =
      bus.BlockingCall("c", "slow", Bytes({1}), milliseconds(1));
  EXPECT_TRUE(reply.status.IsDeadlineExceeded());
  bus.Flush();  // the late reply finds the entry reaped; no crash
  EXPECT_EQ(bus.pending_call_count(), 0u);
}

}  // namespace
}  // namespace hetps
