#include "net/message_bus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

namespace hetps {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> v) {
  return std::vector<uint8_t>(v);
}

TEST(MessageBusTest, OneWayDelivery) {
  MessageBus bus;
  std::atomic<int> received{0};
  ASSERT_TRUE(bus.RegisterEndpoint("sink",
                                   [&](const Envelope& e) {
                                     received.fetch_add(
                                         static_cast<int>(e.payload[0]));
                                     return std::vector<uint8_t>{};
                                   })
                  .ok());
  ASSERT_TRUE(bus.Send("src", "sink", Bytes({5})).ok());
  ASSERT_TRUE(bus.Send("src", "sink", Bytes({7})).ok());
  bus.Flush();
  EXPECT_EQ(received.load(), 12);
  EXPECT_EQ(bus.delivered_count(), 2);
}

TEST(MessageBusTest, RequestResponse) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("echo",
                                   [](const Envelope& e) {
                                     std::vector<uint8_t> out = e.payload;
                                     out.push_back(99);
                                     return out;
                                   })
                  .ok());
  auto future = bus.Call("client", "echo", Bytes({1, 2}));
  ASSERT_TRUE(future.ok());
  const auto response = future.value().get();
  EXPECT_EQ(response, Bytes({1, 2, 99}));
}

TEST(MessageBusTest, UnknownEndpointIsNotFound) {
  MessageBus bus;
  EXPECT_TRUE(bus.Send("a", "nope", {}).IsNotFound());
  EXPECT_TRUE(bus.Call("a", "nope", {}).status().IsNotFound());
}

TEST(MessageBusTest, DuplicateEndpointRejected) {
  MessageBus bus;
  auto handler = [](const Envelope&) { return std::vector<uint8_t>{}; };
  ASSERT_TRUE(bus.RegisterEndpoint("x", handler).ok());
  EXPECT_EQ(bus.RegisterEndpoint("x", handler).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(bus.RegisterEndpoint("y", nullptr).ok());
}

TEST(MessageBusTest, HandlersOfOneEndpointRunSequentially) {
  MessageBus bus;
  std::vector<int> order;  // guarded by sequential execution itself
  ASSERT_TRUE(bus.RegisterEndpoint("seq",
                                   [&](const Envelope& e) {
                                     order.push_back(e.payload[0]);
                                     return std::vector<uint8_t>{};
                                   })
                  .ok());
  for (uint8_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(bus.Send("src", "seq", Bytes({i})).ok());
  }
  bus.Flush();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);  // FIFO, no interleave
  }
}

TEST(MessageBusTest, EndpointsRunConcurrently) {
  // A request to endpoint B issued from inside endpoint A's handler must
  // complete (would deadlock if all endpoints shared one thread).
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("b",
                                   [](const Envelope&) {
                                     return Bytes({42});
                                   })
                  .ok());
  ASSERT_TRUE(bus.RegisterEndpoint(
                     "a",
                     [&](const Envelope&) {
                       auto f = bus.Call("a", "b", {});
                       return f.ok() ? f.value().get()
                                     : std::vector<uint8_t>{};
                     })
                  .ok());
  auto future = bus.Call("client", "a", {});
  ASSERT_TRUE(future.ok());
  EXPECT_EQ(future.value().get(), Bytes({42}));
}

TEST(MessageBusTest, ManyConcurrentCallers) {
  MessageBus bus;
  ASSERT_TRUE(bus.RegisterEndpoint("sum",
                                   [](const Envelope& e) {
                                     std::vector<uint8_t> out = {
                                         static_cast<uint8_t>(
                                             e.payload[0] + 1)};
                                     return out;
                                   })
                  .ok());
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&bus, &ok, t] {
      for (uint8_t i = 0; i < 20; ++i) {
        auto f = bus.Call("c" + std::to_string(t), "sum", Bytes({i}));
        if (f.ok() && f.value().get()[0] == i + 1) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 8 * 20);
}

}  // namespace
}  // namespace hetps
