#include "net/heartbeat.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace hetps {
namespace {

TEST(HeartbeatTest, FreshNodesAreAlive) {
  HeartbeatMonitor monitor(5.0);
  monitor.Register("worker-0", 100.0);
  EXPECT_TRUE(monitor.IsAlive("worker-0", 104.9));
  EXPECT_TRUE(monitor.IsAlive("worker-0", 105.0));  // boundary inclusive
  EXPECT_FALSE(monitor.IsAlive("worker-0", 105.1));
  EXPECT_EQ(monitor.node_count(), 1u);
}

TEST(HeartbeatTest, BeatsExtendLife) {
  HeartbeatMonitor monitor(5.0);
  monitor.Register("ps-0", 0.0);
  monitor.Beat("ps-0", 4.0);
  monitor.Beat("ps-0", 8.0);
  EXPECT_TRUE(monitor.IsAlive("ps-0", 12.0));
  EXPECT_DOUBLE_EQ(monitor.SecondsSinceLastBeat("ps-0", 12.0), 4.0);
}

TEST(HeartbeatTest, OutOfOrderBeatsKeepFreshest) {
  HeartbeatMonitor monitor(5.0);
  monitor.Register("n", 0.0);
  monitor.Beat("n", 10.0);
  monitor.Beat("n", 7.0);  // late-arriving older beat
  EXPECT_DOUBLE_EQ(monitor.SecondsSinceLastBeat("n", 11.0), 1.0);
}

TEST(HeartbeatTest, SuspectedDeadListsTimedOutNodes) {
  HeartbeatMonitor monitor(2.0);
  monitor.Register("a", 0.0);
  monitor.Register("b", 0.0);
  monitor.Beat("b", 3.0);
  const auto dead = monitor.SuspectedDead(4.0);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], "a");
}

TEST(HeartbeatTest, UnknownNodesAreNotAlive) {
  HeartbeatMonitor monitor(2.0);
  EXPECT_FALSE(monitor.IsAlive("ghost", 1.0));
  EXPECT_DOUBLE_EQ(monitor.SecondsSinceLastBeat("ghost", 1.0), -1.0);
}

TEST(HeartbeatTest, RestartedNodeRejoinsViaBeat) {
  HeartbeatMonitor monitor(1.0);
  monitor.Register("w", 0.0);
  EXPECT_FALSE(monitor.IsAlive("w", 10.0));
  monitor.Beat("w", 10.0);  // worker restarted and re-joined
  EXPECT_TRUE(monitor.IsAlive("w", 10.5));
}

TEST(HeartbeatDeathTest, RejectsNonPositiveTimeout) {
  EXPECT_DEATH(HeartbeatMonitor(0.0), "positive");
}

// A beat from a node nobody registered must NOT create membership: an
// evicted (unregistered) worker's in-flight RPCs would otherwise
// resurrect it behind the sweeper's back. The beat is a counted no-op.
TEST(HeartbeatTest, UnknownBeatIsCountedNoOp) {
  HeartbeatMonitor monitor(5.0);
  EXPECT_EQ(monitor.unknown_beats(), 0);
  monitor.Beat("ghost", 1.0);
  monitor.Beat("ghost", 2.0);
  EXPECT_EQ(monitor.unknown_beats(), 2);
  EXPECT_EQ(monitor.node_count(), 0u);
  EXPECT_FALSE(monitor.IsAlive("ghost", 2.0));
  EXPECT_DOUBLE_EQ(monitor.SecondsSinceLastBeat("ghost", 2.0), -1.0);
  EXPECT_TRUE(monitor.SuspectedDead(100.0).empty());
}

TEST(HeartbeatTest, UnregisterRemovesNode) {
  HeartbeatMonitor monitor(5.0);
  monitor.Register("w", 0.0);
  EXPECT_TRUE(monitor.IsAlive("w", 1.0));
  EXPECT_TRUE(monitor.Unregister("w"));
  EXPECT_FALSE(monitor.Unregister("w"));  // idempotent: already gone
  EXPECT_EQ(monitor.node_count(), 0u);
  EXPECT_FALSE(monitor.IsAlive("w", 1.0));
  // An unregistered node never shows up as suspected-dead...
  EXPECT_TRUE(monitor.SuspectedDead(100.0).empty());
  // ...and its late beats are counted no-ops, not a re-join.
  monitor.Beat("w", 2.0);
  EXPECT_EQ(monitor.unknown_beats(), 1);
  EXPECT_FALSE(monitor.IsAlive("w", 2.0));
}

// Exercised under TSan by the sanitizer CI leg: readers, beaters and an
// unregistering thread race on the same monitor.
TEST(HeartbeatTest, ConcurrentBeatsAndUnregisterAreSafe) {
  HeartbeatMonitor monitor(5.0);
  constexpr int kNodes = 8;
  for (int n = 0; n < kNodes; ++n) {
    monitor.Register("w" + std::to_string(n), 0.0);
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&monitor, &stop, t] {
      double now = 1.0;
      while (!stop.load(std::memory_order_relaxed)) {
        monitor.Beat("w" + std::to_string(t), now);
        monitor.Beat("ghost", now);  // permanent counted no-op
        now += 0.5;
      }
    });
  }
  threads.emplace_back([&monitor, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int n = 0; n < kNodes; ++n) {
        monitor.IsAlive("w" + std::to_string(n), 2.0);
      }
      monitor.SuspectedDead(1000.0);
      monitor.node_count();
    }
  });
  threads.emplace_back([&monitor, &stop] {
    for (int n = 4; n < kNodes; ++n) {
      monitor.Unregister("w" + std::to_string(n));
    }
    while (!stop.load(std::memory_order_relaxed)) {
      monitor.Beat("w4", 3.0);  // unregistered: counted no-op forever
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();
  EXPECT_EQ(monitor.node_count(), 4u);
  EXPECT_GT(monitor.unknown_beats(), 0);
  for (int n = 0; n < 4; ++n) {
    EXPECT_TRUE(monitor.IsAlive("w" + std::to_string(n), 2.0));
  }
}

}  // namespace
}  // namespace hetps
