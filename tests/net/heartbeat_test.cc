#include "net/heartbeat.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

TEST(HeartbeatTest, FreshNodesAreAlive) {
  HeartbeatMonitor monitor(5.0);
  monitor.Register("worker-0", 100.0);
  EXPECT_TRUE(monitor.IsAlive("worker-0", 104.9));
  EXPECT_TRUE(monitor.IsAlive("worker-0", 105.0));  // boundary inclusive
  EXPECT_FALSE(monitor.IsAlive("worker-0", 105.1));
  EXPECT_EQ(monitor.node_count(), 1u);
}

TEST(HeartbeatTest, BeatsExtendLife) {
  HeartbeatMonitor monitor(5.0);
  monitor.Register("ps-0", 0.0);
  monitor.Beat("ps-0", 4.0);
  monitor.Beat("ps-0", 8.0);
  EXPECT_TRUE(monitor.IsAlive("ps-0", 12.0));
  EXPECT_DOUBLE_EQ(monitor.SecondsSinceLastBeat("ps-0", 12.0), 4.0);
}

TEST(HeartbeatTest, OutOfOrderBeatsKeepFreshest) {
  HeartbeatMonitor monitor(5.0);
  monitor.Beat("n", 10.0);
  monitor.Beat("n", 7.0);  // late-arriving older beat
  EXPECT_DOUBLE_EQ(monitor.SecondsSinceLastBeat("n", 11.0), 1.0);
}

TEST(HeartbeatTest, SuspectedDeadListsTimedOutNodes) {
  HeartbeatMonitor monitor(2.0);
  monitor.Register("a", 0.0);
  monitor.Register("b", 0.0);
  monitor.Beat("b", 3.0);
  const auto dead = monitor.SuspectedDead(4.0);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], "a");
}

TEST(HeartbeatTest, UnknownNodesAreNotAlive) {
  HeartbeatMonitor monitor(2.0);
  EXPECT_FALSE(monitor.IsAlive("ghost", 1.0));
  EXPECT_DOUBLE_EQ(monitor.SecondsSinceLastBeat("ghost", 1.0), -1.0);
}

TEST(HeartbeatTest, RestartedNodeRejoinsViaBeat) {
  HeartbeatMonitor monitor(1.0);
  monitor.Register("w", 0.0);
  EXPECT_FALSE(monitor.IsAlive("w", 10.0));
  monitor.Beat("w", 10.0);  // worker restarted and re-joined
  EXPECT_TRUE(monitor.IsAlive("w", 10.5));
}

TEST(HeartbeatDeathTest, RejectsNonPositiveTimeout) {
  EXPECT_DEATH(HeartbeatMonitor(0.0), "positive");
}

}  // namespace
}  // namespace hetps
