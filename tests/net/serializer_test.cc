#include "net/serializer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.h"

namespace hetps {
namespace {

TEST(SerializerTest, ScalarRoundTrips) {
  ByteWriter w;
  w.WriteU8(200);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFULL);
  w.WriteI64(-42);
  w.WriteDouble(3.14159);
  w.WriteString("hello");
  ByteReader r(w.buffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  std::string s;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(u8, 200);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializerTest, SpecialDoublesSurvive) {
  ByteWriter w;
  w.WriteDouble(std::numeric_limits<double>::infinity());
  w.WriteDouble(-0.0);
  w.WriteDouble(std::numeric_limits<double>::denorm_min());
  ByteReader r(w.buffer());
  double a, b, c;
  ASSERT_TRUE(r.ReadDouble(&a).ok());
  ASSERT_TRUE(r.ReadDouble(&b).ok());
  ASSERT_TRUE(r.ReadDouble(&c).ok());
  EXPECT_TRUE(std::isinf(a));
  EXPECT_TRUE(std::signbit(b));
  EXPECT_DOUBLE_EQ(c, std::numeric_limits<double>::denorm_min());
}

TEST(SerializerTest, SparseAndDenseVectorsRoundTrip) {
  SparseVector sv({0, 7, 123456789}, {1.5, -2.0, 3.25});
  std::vector<double> dv = {0.0, 1.0, -9.75};
  ByteWriter w;
  w.WriteSparseVector(sv);
  w.WriteDenseVector(dv);
  ByteReader r(w.buffer());
  SparseVector sv2;
  std::vector<double> dv2;
  ASSERT_TRUE(r.ReadSparseVector(&sv2).ok());
  ASSERT_TRUE(r.ReadDenseVector(&dv2).ok());
  EXPECT_TRUE(sv == sv2);
  EXPECT_EQ(dv, dv2);
}

TEST(SerializerTest, EmptyVectorsRoundTrip) {
  ByteWriter w;
  w.WriteSparseVector(SparseVector());
  w.WriteDenseVector({});
  ByteReader r(w.buffer());
  SparseVector sv;
  std::vector<double> dv = {1.0};
  ASSERT_TRUE(r.ReadSparseVector(&sv).ok());
  ASSERT_TRUE(r.ReadDenseVector(&dv).ok());
  EXPECT_TRUE(sv.empty());
  EXPECT_TRUE(dv.empty());
}

TEST(SerializerTest, TruncationIsAnErrorNotACrash) {
  ByteWriter w;
  w.WriteSparseVector(SparseVector({1, 2, 3}, {1.0, 2.0, 3.0}));
  const auto& full = w.buffer();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    ByteReader r(full.data(), cut);
    SparseVector out;
    EXPECT_FALSE(r.ReadSparseVector(&out).ok()) << "cut " << cut;
  }
}

TEST(SerializerTest, CorruptLengthPrefixRejected) {
  ByteWriter w;
  w.WriteU64(1ULL << 40);  // claims 2^40 elements
  ByteReader r(w.buffer());
  std::vector<double> out;
  EXPECT_TRUE(r.ReadDenseVector(&out).IsOutOfRange());
  ByteReader r2(w.buffer());
  SparseVector sv;
  EXPECT_TRUE(r2.ReadSparseVector(&sv).IsOutOfRange());
}

TEST(SerializerTest, NonMonotoneSparseIndicesRejected) {
  // Columnar wire format: nnz, all indices, then all values.
  ByteWriter w;
  w.WriteU64(2);
  w.WriteI64(5);
  w.WriteI64(3);  // decreasing
  w.WriteDouble(1.0);
  w.WriteDouble(2.0);
  ByteReader r(w.buffer());
  SparseVector out;
  EXPECT_TRUE(r.ReadSparseVector(&out).IsInvalidArgument());
}

TEST(SerializerTest, DuplicateSparseIndicesRejected) {
  ByteWriter w;
  w.WriteU64(2);
  w.WriteI64(4);
  w.WriteI64(4);  // duplicate
  w.WriteDouble(1.0);
  w.WriteDouble(2.0);
  ByteReader r(w.buffer());
  SparseVector out;
  EXPECT_TRUE(r.ReadSparseVector(&out).IsInvalidArgument());
}

TEST(SerializerTest, NegativeSparseIndexRejected) {
  ByteWriter w;
  w.WriteU64(2);
  w.WriteI64(-1);  // negative index must never reach SparseVector
  w.WriteI64(3);
  w.WriteDouble(1.0);
  w.WriteDouble(2.0);
  ByteReader r(w.buffer());
  SparseVector out;
  EXPECT_TRUE(r.ReadSparseVector(&out).IsInvalidArgument());
}

TEST(SerializerTest, OversizedStringWriteFailsCleanly) {
  // The old writer cast size_t to uint32_t, emitting a corrupt frame for
  // >4 GiB strings; the cap now rejects long before that, and the buffer
  // stays untouched so the caller can still use the writer.
  ByteWriter w;
  std::string big(static_cast<size_t>(kMaxWireStringBytes) + 1, 'x');
  EXPECT_TRUE(w.WriteString(big).IsInvalidArgument());
  EXPECT_EQ(w.size(), 0u);
  ASSERT_TRUE(w.WriteString("still works").ok());
  ByteReader r(w.buffer());
  std::string s;
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(s, "still works");
}

TEST(SerializerTest, OversizedStringLengthPrefixRejected) {
  ByteWriter w;
  w.WriteU32(static_cast<uint32_t>(kMaxWireStringBytes) + 1);
  ByteReader r(w.buffer());
  std::string s;
  EXPECT_TRUE(r.ReadString(&s).IsOutOfRange());
}

TEST(SerializerTest, LargeVectorsRoundTripThroughBulkPath) {
  // Exercises the memcpy fast path with enough elements that an off-by-
  // one in the word count would corrupt or over-read.
  Rng rng(42);
  std::vector<int64_t> idx;
  std::vector<double> val;
  for (int64_t i = 0; i < 10000; ++i) {
    idx.push_back(i * 3 + static_cast<int64_t>(rng.NextUint64(3)));
    val.push_back(rng.NextDouble() - 0.5);
  }
  SparseVector sv(idx, val);
  std::vector<double> dv(4096);
  for (auto& v : dv) v = rng.NextDouble();
  ByteWriter w;
  w.WriteSparseVector(sv);
  w.WriteDenseVector(dv);
  ByteReader r(w.buffer());
  SparseVector sv2;
  std::vector<double> dv2;
  ASSERT_TRUE(r.ReadSparseVector(&sv2).ok());
  ASSERT_TRUE(r.ReadDenseVector(&dv2).ok());
  EXPECT_TRUE(sv == sv2);
  EXPECT_EQ(dv, dv2);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializerTest, SparseNnzPrefixLargerThanPayloadRejected) {
  // Claims 3 elements but ships only 2 — the reader must fail on the
  // prefix check, not allocate-and-over-read.
  ByteWriter w;
  w.WriteU64(3);
  w.WriteI64(1);
  w.WriteI64(2);
  w.WriteDouble(1.0);
  w.WriteDouble(2.0);
  ByteReader r(w.buffer());
  SparseVector out;
  EXPECT_FALSE(r.ReadSparseVector(&out).ok());
}

TEST(SerializerFuzzTest, RandomBytesNeverCrashReaders) {
  Rng rng(909);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> junk(rng.NextUint64(64));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextUint64(256));
    ByteReader r(junk);
    SparseVector sv;
    std::vector<double> dv;
    std::string s;
    // Any outcome is fine as long as nothing crashes or over-reads.
    (void)r.ReadSparseVector(&sv);
    ByteReader r2(junk);
    (void)r2.ReadDenseVector(&dv);
    ByteReader r3(junk);
    (void)r3.ReadString(&s);
  }
}

}  // namespace
}  // namespace hetps
