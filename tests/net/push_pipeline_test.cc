// The asynchronous push pipeline end to end: the columnar wire format
// and its server-side validation/dedup, the background sender's window
// and error latch, read-your-writes drains, and composition with the
// lossy bus, worker eviction and live rebalancing. All fixtures here
// are named PushPipeline* so CI's TSan leg picks them up
// (scripts/run_sanitizers.sh tsan 'PushPipeline|PsConcurrency|PullCache').

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "core/dyn_sgd.h"
#include "core/learning_rate.h"
#include "data/synthetic.h"
#include "engine/distributed_trainer.h"
#include "engine/threaded_trainer.h"
#include "net/message_bus.h"
#include "net/ps_service.h"
#include "net/serializer.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace hetps {
namespace {

constexpr std::chrono::microseconds kForever{0};

struct PipelineHarness {
  explicit PipelineHarness(int workers, int64_t dim,
                           SyncPolicy sync = SyncPolicy::Asp(),
                           int partitions_per_server = 2)
      : rule(),
        ps(dim, workers, rule,
           [&] {
             PsOptions o;
             o.num_servers = 2;
             o.partitions_per_server = partitions_per_server;
             o.sync = sync;
             return o;
           }()),
        service(&ps, &bus, "ps") {
    EXPECT_TRUE(service.status().ok());
  }

  DynSgdRule rule;
  MessageBus bus;
  ParameterServer ps;
  PsService service;
};

uint8_t StatusByteOf(const BusReply& reply) {
  EXPECT_TRUE(reply.ok());
  ByteReader r(reply.payload);
  uint8_t code = 255;
  EXPECT_TRUE(r.ReadU8(&code).ok());
  return code;
}

// After the layout handshake (PullCached) a pipelined client ships the
// columnar frame; the pieces land on the right shards and the clock
// table advances exactly once per push.
TEST(PushPipelineTest, ColumnarPushRoundtripAppliesOnce) {
  PipelineHarness h(1, 16);
  RpcWorkerClient client(0, &h.bus, "ps", RpcRetryPolicy(),
                         /*push_window=*/1);
  std::vector<double> replica;
  int cp = 0;
  ASSERT_TRUE(client.PullCached(&replica, &cp).ok());  // layout handshake
  ASSERT_TRUE(client.Push(0, SparseVector({1, 9, 15}, {1.0, 2.0, 3.0})).ok());
  ASSERT_TRUE(client.Flush().ok());
  ASSERT_TRUE(client.PullCached(&replica, &cp).ok());
  EXPECT_DOUBLE_EQ(replica[1], 1.0);
  EXPECT_DOUBLE_EQ(replica[9], 2.0);
  EXPECT_DOUBLE_EQ(replica[15], 3.0);
  EXPECT_EQ(h.ps.cmin(), 1);  // the clock advanced exactly once
  h.bus.Flush();
  EXPECT_NE(h.service.metrics().Report().find("rpc.push_columnar 1"),
            std::string::npos);
}

// Before any PullCached the client has no layout, so a pipelined push
// falls back to the legacy global-indexed kPush frame and still works.
TEST(PushPipelineTest, LegacyFrameFallbackBeforeLayoutHandshake) {
  PipelineHarness h(1, 8);
  RpcWorkerClient client(0, &h.bus, "ps", RpcRetryPolicy(),
                         /*push_window=*/1);
  ASSERT_TRUE(client.Push(0, SparseVector({2, 6}, {1.0, -1.0})).ok());
  ASSERT_TRUE(client.Flush().ok());
  std::vector<double> replica;
  ASSERT_TRUE(client.Pull(&replica, nullptr).ok());
  EXPECT_DOUBLE_EQ(replica[2], 1.0);
  EXPECT_DOUBLE_EQ(replica[6], -1.0);
  h.bus.Flush();
  const std::string report = h.service.metrics().Report();
  EXPECT_EQ(report.find("rpc.push_columnar"), std::string::npos);
}

std::vector<uint8_t> ColumnarFrame(const ParameterServer& ps, int worker,
                                   int clock, const SparseVector& update) {
  const std::vector<SparseVector> pieces =
      ps.partitioner().SplitByPartition(update);
  uint64_t kept = 0;
  for (const SparseVector& piece : pieces) {
    if (!piece.empty()) ++kept;
  }
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(PsOpCode::kPushColumnar));
  w.WriteI64(worker);
  w.WriteI64(clock);
  w.WriteU64(kept);
  for (size_t p = 0; p < pieces.size(); ++p) {
    if (pieces[p].empty()) continue;
    w.WriteI64(static_cast<int64_t>(p));
    w.WriteSparseVector(pieces[p]);
  }
  return w.TakeBuffer();
}

// At-least-once delivery: a retransmitted columnar frame (same worker,
// same clock) must ack OK without applying the update twice.
TEST(PushPipelineTest, DuplicateColumnarFrameIsDeduped) {
  PipelineHarness h(1, 16);
  const SparseVector update({3, 12}, {1.0, 2.0});
  const std::vector<uint8_t> frame = ColumnarFrame(h.ps, 0, 0, update);
  EXPECT_EQ(StatusByteOf(h.bus.BlockingCall("c", "ps", frame, kForever)),
            0);
  EXPECT_EQ(StatusByteOf(h.bus.BlockingCall("c", "ps", frame, kForever)),
            0);
  const std::vector<double> state = h.ps.PullFull(0);
  EXPECT_DOUBLE_EQ(state[3], 1.0);  // once, not twice
  EXPECT_DOUBLE_EQ(state[12], 2.0);
  EXPECT_EQ(h.ps.cmin(), 1);
  h.bus.Flush();
  EXPECT_NE(h.service.metrics().Report().find("rpc.push_duplicates 1"),
            std::string::npos);
}

// Malformed columnar frames are refused before anything applies: pieces
// out of partition order (which could double-apply a shard), piece
// indices beyond the partition's dim, and a piece count beyond the
// layout.
TEST(PushPipelineTest, MalformedColumnarFramesAreRejectedAtomically) {
  PipelineHarness h(1, 16);
  // Non-increasing partition ids.
  {
    ByteWriter w;
    w.WriteU8(static_cast<uint8_t>(PsOpCode::kPushColumnar));
    w.WriteI64(0);   // worker
    w.WriteI64(0);   // clock
    w.WriteU64(2);
    w.WriteI64(1);
    w.WriteSparseVector(SparseVector({0}, {1.0}));
    w.WriteI64(1);  // duplicate partition id
    w.WriteSparseVector(SparseVector({0}, {1.0}));
    EXPECT_NE(StatusByteOf(h.bus.BlockingCall("c", "ps", w.TakeBuffer(),
                                              kForever)),
              0);
  }
  // Piece index beyond the partition's local dim.
  {
    ByteWriter w;
    w.WriteU8(static_cast<uint8_t>(PsOpCode::kPushColumnar));
    w.WriteI64(0);
    w.WriteI64(0);
    w.WriteU64(1);
    w.WriteI64(0);
    w.WriteSparseVector(SparseVector({1000}, {1.0}));
    EXPECT_NE(StatusByteOf(h.bus.BlockingCall("c", "ps", w.TakeBuffer(),
                                              kForever)),
              0);
  }
  // More pieces than partitions.
  {
    ByteWriter w;
    w.WriteU8(static_cast<uint8_t>(PsOpCode::kPushColumnar));
    w.WriteI64(0);
    w.WriteI64(0);
    w.WriteU64(100);
    EXPECT_NE(StatusByteOf(h.bus.BlockingCall("c", "ps", w.TakeBuffer(),
                                              kForever)),
              0);
  }
  // Nothing leaked into the store or the clock table.
  for (double v : h.ps.PullFull(0)) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(h.ps.cmin(), 0);
}

// An all-zero update still has to advance the clock table (SSP counts
// clocks, not bytes) — the client ships an empty columnar frame rather
// than skipping the push.
TEST(PushPipelineTest, AllEmptyPushStillAdvancesClock) {
  PipelineHarness h(1, 16);
  RpcWorkerClient client(0, &h.bus, "ps", RpcRetryPolicy(),
                         /*push_window=*/1);
  std::vector<double> replica;
  int cp = 0;
  ASSERT_TRUE(client.PullCached(&replica, &cp).ok());
  ASSERT_TRUE(client.Push(0, SparseVector()).ok());
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(h.ps.cmin(), 1);
}

// The window bounds how far the owner can run ahead: inflight never
// exceeds push_window, and the peak gauge proves the pipeline actually
// overlapped.
TEST(PushPipelineTest, WindowBoundsInflightAndPeakGaugeRecords) {
  PipelineHarness h(1, 16);
  GlobalMetrics().gauge("push.inflight_peak")->Set(0.0);
  RpcWorkerClient client(0, &h.bus, "ps", RpcRetryPolicy(),
                         /*push_window=*/2);
  std::vector<double> replica;
  int cp = 0;
  ASSERT_TRUE(client.PullCached(&replica, &cp).ok());
  for (int c = 0; c < 32; ++c) {
    ASSERT_TRUE(client.Push(c, SparseVector({c % 16}, {0.01})).ok());
  }
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(h.ps.cmin(), 32);
  const double peak = GlobalMetrics().gauge("push.inflight_peak")->value();
  EXPECT_GT(peak, 0.0);
  EXPECT_LE(peak, 2.0);
  EXPECT_DOUBLE_EQ(GlobalMetrics().gauge("push.inflight")->value(), 0.0);
  EXPECT_GE(client.push_hidden_seconds(), 0.0);
}

// Read-your-writes: a pull must observe every update this worker already
// pushed, even ones still sitting in the sender queue.
TEST(PushPipelineTest, PullDrainsTheQueueFirst) {
  PipelineHarness h(1, 16);
  RpcWorkerClient client(0, &h.bus, "ps", RpcRetryPolicy(),
                         /*push_window=*/4);
  std::vector<double> replica;
  int cp = 0;
  ASSERT_TRUE(client.PullCached(&replica, &cp).ok());
  for (int c = 0; c < 8; ++c) {
    ASSERT_TRUE(client.Push(c, SparseVector({5}, {1.0})).ok());
  }
  // No explicit Flush: the pull itself must drain.
  ASSERT_TRUE(client.PullCached(&replica, &cp).ok());
  EXPECT_DOUBLE_EQ(replica[5], 8.0);
}

// Eviction mid-pipeline: the in-flight push fails with
// FailedPrecondition, the latch surfaces it on the owner thread (no
// hang), and Readmit clears the latch so the worker can resume.
TEST(PushPipelineTest, EvictionMidFlightSurfacesAndReadmitRecovers) {
  DynSgdRule rule;
  MessageBus bus;
  PsOptions o;
  o.num_servers = 2;
  o.sync = SyncPolicy::Asp();
  ParameterServer ps(8, 2, rule, o);
  double now = 0.0;
  PsServiceOptions svc;
  svc.liveness.heartbeat_timeout_seconds = 5.0;
  svc.liveness.now_fn = [&now] { return now; };
  PsService service(&ps, &bus, "ps", svc);
  ASSERT_TRUE(service.status().ok());
  RpcWorkerClient c0(0, &bus, "ps", RpcRetryPolicy::NoRetry());
  RpcWorkerClient c1(1, &bus, "ps", RpcRetryPolicy::NoRetry(),
                     /*push_window=*/1);
  ASSERT_TRUE(c0.Push(0, SparseVector({1}, {1.0})).ok());
  ASSERT_TRUE(c1.Push(0, SparseVector({2}, {1.0})).ok());
  ASSERT_TRUE(c1.Flush().ok());

  // Worker 1 goes silent past the timeout; worker 0's next request
  // sweeps it out.
  now = 10.0;
  ASSERT_TRUE(c0.Push(1, SparseVector({1}, {1.0})).ok());
  ASSERT_FALSE(ps.IsWorkerLive(1));

  // The zombie's pipelined push is accepted into the queue, fails
  // against the server, and the latched error surfaces on Flush with
  // the failing clock named.
  Status st = c1.Push(1, SparseVector({2}, {1.0}));
  if (st.ok()) st = c1.Flush();
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  // Once latched, new pushes are refused outright.
  EXPECT_TRUE(c1.Push(2, SparseVector({2}, {1.0})).IsFailedPrecondition());

  // Readmit drains the wreckage, resets the latch, and the pipeline
  // works again.
  ASSERT_TRUE(c1.Readmit(ps.cmin()).ok());
  ASSERT_TRUE(c1.Push(static_cast<int>(ps.cmin()), SparseVector({2}, {1.0}))
                  .ok());
  EXPECT_TRUE(c1.Flush().ok());
}

Dataset PipelineData() {
  SyntheticConfig cfg;
  cfg.num_examples = 400;
  cfg.num_features = 150;
  cfg.avg_nnz = 8;
  cfg.seed = 51;
  Dataset d = GenerateSynthetic(cfg);
  Rng rng(52);
  d.Shuffle(&rng);
  return d;
}

DistributedTrainerOptions PipelineOptions() {
  DistributedTrainerOptions opts;
  opts.num_workers = 3;
  opts.num_servers = 2;
  opts.max_clocks = 10;
  opts.eval_sample = 400;
  opts.sync = SyncPolicy::Ssp(2);
  opts.push_window = 1;
  opts.push_parallelism = 2;
  return opts;
}

// The pipelined trainer converges like the synchronous one.
TEST(PushPipelineTest, PipelinedTrainerConverges) {
  const Dataset d = PipelineData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;
  auto result = TrainDistributed(d, loss, sched, rule, PipelineOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result.value().final_objective, 0.5);
  EXPECT_EQ(result.value().next_clock, 10);
  // The pipeline overlapped at least some push time somewhere.
  double hidden = 0.0;
  for (const WorkerTimeBreakdown& b : result.value().worker_breakdown) {
    hidden += b.push_hidden_seconds;
  }
  EXPECT_GE(hidden, 0.0);
}

// Retry/dedup under the pipeline: a lossy bus (drops, delays,
// duplicates) with push_window 1 still converges — async push retries
// are deduped by (worker, clock) exactly like synchronous ones.
TEST(PushPipelineTest, PipelineComposesWithLossyBus) {
  const Dataset d = PipelineData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;
  DistributedTrainerOptions opts = PipelineOptions();
  opts.fault_plan.drop_request_prob = 0.10;
  opts.fault_plan.drop_response_prob = 0.05;
  opts.fault_plan.duplicate_prob = 0.05;
  opts.fault_plan.delay_prob = 0.10;
  opts.fault_plan.seed = 77;
  opts.rpc_retry.timeout = std::chrono::milliseconds(10);
  opts.rpc_retry.max_attempts = 40;
  opts.rpc_retry.initial_backoff = std::chrono::microseconds(100);

  auto result = TrainDistributed(d, loss, sched, rule, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result.value().final_objective, 0.5);
  EXPECT_EQ(result.value().next_clock, 10);
  EXPECT_GT(result.value().faults.total(), 0);
  EXPECT_GT(result.value().rpc_retries, 0);
}

// Kill-a-worker under the pipeline: the victim's in-flight push
// resolves (FailedPrecondition via the latch, not a hang), the
// survivors complete, and the shard fails over.
TEST(PushPipelineTest, PipelineComposesWithEviction) {
  const Dataset d = PipelineData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;
  DistributedTrainerOptions opts = PipelineOptions();
  opts.num_workers = 4;
  opts.sync = SyncPolicy::Ssp(3);
  opts.fault_plan.fault_worker = 2;
  opts.fault_plan.kill_at_clock = 3;
  opts.heartbeat_timeout = 2.0;

  auto result = TrainDistributed(d, loss, sched, rule, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().evicted_workers.size(), 1u);
  EXPECT_EQ(result.value().evicted_workers[0], 2);
  EXPECT_GT(result.value().examples_failed_over, 0);
  EXPECT_EQ(result.value().next_clock, 10);
}

// Live rebalancing under the pipeline: ReportClock rides alongside the
// async pushes and the balancer still sheds load off the injected
// straggler.
TEST(PushPipelineTest, PipelineComposesWithRebalance) {
  const Dataset d = PipelineData();
  LogisticLoss loss;
  FixedRate sched(0.5);
  DynSgdRule rule;
  DistributedTrainerOptions opts = PipelineOptions();
  opts.max_clocks = 14;
  opts.rebalance = true;
  opts.rebalance_hysteresis = 2;
  opts.reassign_fraction = 0.10;
  opts.injected_compute_delay = {0.0, 0.0, 0.004};

  auto result = TrainDistributed(d, loss, sched, rule, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().examples_rebalanced, 0);
  EXPECT_EQ(result.value().next_clock, 14);
}

// With one worker the pipeline is a pure latency optimization: the
// drain-before-pull ordering means window 1 applies every update at the
// same point in the schedule as window 0, so the trained weights agree
// bit for bit.
TEST(PushPipelineTest, SingleWorkerWindowOneIsBitwiseIdentical) {
  const Dataset d = PipelineData();
  LogisticLoss loss;
  FixedRate sched(0.3);
  DynSgdRule rule;
  ThreadedTrainResult runs[2];
  for (int w = 0; w <= 1; ++w) {
    ThreadedTrainerOptions opts;
    opts.sync = SyncPolicy::Ssp(2);
    opts.max_clocks = 8;
    opts.num_workers = 1;
    opts.num_servers = 2;
    opts.seed = 7;
    opts.push_window = w;
    runs[w] = TrainThreaded(d, loss, sched, rule, opts);
  }
  ASSERT_EQ(runs[0].weights.size(), runs[1].weights.size());
  for (size_t i = 0; i < runs[0].weights.size(); ++i) {
    ASSERT_EQ(runs[0].weights[i], runs[1].weights[i]) << "index " << i;
  }
  EXPECT_EQ(runs[0].final_objective, runs[1].final_objective);
}

}  // namespace
}  // namespace hetps
