#include "net/ps_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/consolidation.h"
#include "core/dyn_sgd.h"
#include "core/learning_rate.h"
#include "core/sgd_compute.h"
#include "data/synthetic.h"
#include "ps/checkpoint.h"
#include "util/rng.h"

namespace hetps {
namespace {

constexpr std::chrono::microseconds kForever{0};

struct RpcHarness {
  explicit RpcHarness(int workers, int64_t dim,
                      SyncPolicy sync = SyncPolicy::Asp())
      : rule(),
        ps(dim, workers, rule,
           [&] {
             PsOptions o;
             o.num_servers = 2;
             o.sync = sync;
             return o;
           }()),
        service(&ps, &bus, "ps") {
    EXPECT_TRUE(service.status().ok());
  }

  DynSgdRule rule;
  MessageBus bus;
  ParameterServer ps;
  PsService service;
};

TEST(PsServiceTest, PushAndPullOverTheWire) {
  RpcHarness h(2, 8);
  RpcWorkerClient client(0, &h.bus, "ps");
  ASSERT_TRUE(client.Push(0, SparseVector({1, 5}, {2.0, -1.0})).ok());
  std::vector<double> replica;
  int cmin = -1;
  ASSERT_TRUE(client.Pull(&replica, &cmin).ok());
  ASSERT_EQ(replica.size(), 8u);
  EXPECT_DOUBLE_EQ(replica[1], 2.0);
  EXPECT_DOUBLE_EQ(replica[5], -1.0);
  EXPECT_EQ(cmin, 0);  // worker 1 has not pushed
}

TEST(PsServiceTest, PullRangeOverTheWire) {
  RpcHarness h(1, 16);
  RpcWorkerClient client(0, &h.bus, "ps");
  ASSERT_TRUE(client.Push(0, SparseVector({3, 12}, {1.0, 4.0})).ok());
  std::vector<double> window;
  ASSERT_TRUE(client.PullRange(2, 13, &window).ok());
  ASSERT_EQ(window.size(), 11u);
  EXPECT_DOUBLE_EQ(window[1], 1.0);
  EXPECT_DOUBLE_EQ(window[10], 4.0);
}

TEST(PsServiceTest, CanAdvanceAndStableVersion) {
  RpcHarness h(2, 4, SyncPolicy::Ssp(1));
  RpcWorkerClient client(0, &h.bus, "ps");
  auto admitted = client.CanAdvance(1);
  ASSERT_TRUE(admitted.ok());
  EXPECT_TRUE(admitted.value());
  admitted = client.CanAdvance(2);
  ASSERT_TRUE(admitted.ok());
  EXPECT_FALSE(admitted.value());
  auto version = client.StableVersion();
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version.value(), 0);
}

TEST(PsServiceTest, ServerRejectsMalformedRequests) {
  RpcHarness h(1, 4);
  // Unknown opcode.
  {
    ByteWriter w;
    w.WriteU8(250);
    BusReply reply = h.bus.BlockingCall("c", "ps", w.TakeBuffer(), kForever);
    ASSERT_TRUE(reply.ok());
    ByteReader r(reply.payload);
    uint8_t code = 0;
    ASSERT_TRUE(r.ReadU8(&code).ok());
    EXPECT_NE(code, 0);
  }
  // Truncated push.
  {
    ByteWriter w;
    w.WriteU8(static_cast<uint8_t>(PsOpCode::kPush));
    w.WriteI64(0);
    BusReply reply = h.bus.BlockingCall("c", "ps", w.TakeBuffer(), kForever);
    ASSERT_TRUE(reply.ok());
    ByteReader r(reply.payload);
    uint8_t code = 0;
    ASSERT_TRUE(r.ReadU8(&code).ok());
    EXPECT_NE(code, 0);
  }
  // Worker id out of range.
  {
    RpcWorkerClient bad(7, &h.bus, "ps");
    EXPECT_TRUE(bad.Push(0, SparseVector()).IsInvalidArgument());
  }
  // Update index beyond dim.
  {
    RpcWorkerClient client(0, &h.bus, "ps");
    EXPECT_TRUE(client.Push(0, SparseVector({9}, {1.0}))
                    .IsInvalidArgument());
  }
  // The server survives all of it.
  RpcWorkerClient client(0, &h.bus, "ps");
  EXPECT_TRUE(client.Push(0, SparseVector({1}, {1.0})).ok());
}

TEST(PsServiceTest, ServiceMetricsCountRequests) {
  RpcHarness h(1, 8);
  RpcWorkerClient client(0, &h.bus, "ps");
  ASSERT_TRUE(client.Push(0, SparseVector({1}, {1.0})).ok());
  std::vector<double> replica;
  ASSERT_TRUE(client.Pull(&replica, nullptr).ok());
  EXPECT_TRUE(client.Push(0, SparseVector({20}, {1.0}))
                  .IsInvalidArgument());  // out of range -> error
  h.bus.Flush();
  const std::string report = h.service.metrics().Report();
  EXPECT_NE(report.find("rpc.push 2"), std::string::npos);
  EXPECT_NE(report.find("rpc.pull 1"), std::string::npos);
  EXPECT_NE(report.find("rpc.errors 1"), std::string::npos);
  EXPECT_NE(report.find("ps.param_bytes"), std::string::npos);
}

TEST(PsServiceTest, RetriesRecoverFromLostRequests) {
  // A lossy bus drops ~30% of requests; the client's timeout+backoff
  // retry loop must still complete every operation.
  RpcHarness h(1, 8);
  FaultPlan plan;
  plan.drop_request_prob = 0.3;
  plan.seed = 11;
  h.bus.SetFaultPlan(plan);

  RpcRetryPolicy retry;
  retry.timeout = std::chrono::milliseconds(10);
  retry.max_attempts = 30;
  retry.initial_backoff = std::chrono::microseconds(100);
  RpcWorkerClient client(0, &h.bus, "ps", retry);

  for (int c = 0; c < 12; ++c) {
    ASSERT_TRUE(client.Push(c, SparseVector({2}, {1.0})).ok());
  }
  std::vector<double> replica;
  ASSERT_TRUE(client.Pull(&replica, nullptr).ok());
  ASSERT_EQ(replica.size(), 8u);
  EXPECT_GT(h.bus.fault_stats().dropped_requests, 0);
  EXPECT_GT(client.retry_count(), 0);
}

TEST(PsServiceTest, DroppedResponsesDontDoubleApplyPushes) {
  // A dropped *response* means the server already applied the push; the
  // client times out and retransmits. The (worker, clock) dedup table
  // must acknowledge the duplicate without re-applying, so the SSP sum
  // stays exact — at-least-once delivery, exactly-once application.
  SspRule rule;
  PsOptions opts;
  opts.num_servers = 1;
  opts.sync = SyncPolicy::Asp();
  ParameterServer ps(4, 1, rule, opts);
  MessageBus bus;
  PsService service(&ps, &bus, "ps");
  ASSERT_TRUE(service.status().ok());

  FaultPlan plan;
  plan.drop_response_prob = 0.4;
  plan.duplicate_prob = 0.2;  // duplicated requests must also dedup
  plan.seed = 23;
  bus.SetFaultPlan(plan);

  RpcRetryPolicy retry;
  retry.timeout = std::chrono::milliseconds(10);
  retry.max_attempts = 30;
  retry.initial_backoff = std::chrono::microseconds(100);
  RpcWorkerClient client(0, &bus, "ps", retry);

  const int kPushes = 10;
  for (int c = 0; c < kPushes; ++c) {
    ASSERT_TRUE(client.Push(c, SparseVector({0}, {1.0})).ok());
  }
  bus.Flush();
  const std::vector<double> snapshot = ps.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot[0], static_cast<double>(kPushes));
  EXPECT_EQ(ps.TotalPushes(), kPushes);
  EXPECT_GT(bus.fault_stats().dropped_responses, 0);
  EXPECT_GT(client.retry_count(), 0);
}

TEST(PsServiceTest, PullCachedMatchesPullBitForBit) {
  // The version-aware cached pull must be indistinguishable from a full
  // pull, round after round, while shipping fewer content bytes.
  SspRule rule;
  PsOptions opts;
  opts.num_servers = 2;
  opts.partitions_per_server = 2;
  opts.scheme = PartitionScheme::kRange;
  opts.sync = SyncPolicy::Asp();
  ParameterServer ps(64, 2, rule, opts);
  MessageBus bus;
  PsService service(&ps, &bus, "ps");
  ASSERT_TRUE(service.status().ok());
  RpcWorkerClient cached(0, &bus, "ps");
  RpcWorkerClient full(1, &bus, "ps");

  Rng rng(88);
  for (int round = 0; round < 20; ++round) {
    std::vector<int64_t> idx;
    std::vector<double> val;
    for (int64_t key = static_cast<int64_t>(rng.NextUint64(4)); key < 64;
         key += 4 + static_cast<int64_t>(rng.NextUint64(20))) {
      idx.push_back(key);
      val.push_back(rng.NextDouble());
    }
    ASSERT_TRUE(cached.Push(round, SparseVector(idx, val)).ok());
    std::vector<double> a, b;
    int cmin_a = -1, cmin_b = -1;
    ASSERT_TRUE(cached.PullCached(&a, &cmin_a).ok());
    ASSERT_TRUE(full.Pull(&b, &cmin_b).ok());
    ASSERT_EQ(a, b) << "round " << round;
    EXPECT_EQ(cmin_a, cmin_b);
  }
  EXPECT_LT(cached.pulled_bytes(), cached.pulled_bytes_full());
}

TEST(PsServiceTest, PullCachedSurvivesLossyBus) {
  // Delta pulls under at-least-once delivery: dropped requests, dropped
  // responses, and duplicates must leave the client cache coherent —
  // every successful pull equals the server snapshot.
  SspRule rule;
  PsOptions opts;
  opts.num_servers = 2;
  opts.partitions_per_server = 2;
  opts.scheme = PartitionScheme::kRange;
  opts.sync = SyncPolicy::Asp();
  ParameterServer ps(48, 1, rule, opts);
  MessageBus bus;
  PsService service(&ps, &bus, "ps");
  ASSERT_TRUE(service.status().ok());

  FaultPlan plan;
  plan.drop_request_prob = 0.15;
  plan.drop_response_prob = 0.15;
  plan.duplicate_prob = 0.10;
  plan.seed = 19;
  bus.SetFaultPlan(plan);

  RpcRetryPolicy retry;
  retry.timeout = std::chrono::milliseconds(10);
  retry.max_attempts = 60;
  retry.initial_backoff = std::chrono::microseconds(100);
  RpcWorkerClient client(0, &bus, "ps", retry);

  Rng rng(5);
  for (int round = 0; round < 15; ++round) {
    const int64_t key = static_cast<int64_t>(rng.NextUint64(48));
    ASSERT_TRUE(
        client.Push(round, SparseVector({key}, {1.0})).ok());
    std::vector<double> replica;
    int cmin = -1;
    ASSERT_TRUE(client.PullCached(&replica, &cmin).ok());
    bus.Flush();
    ASSERT_EQ(replica, ps.Snapshot()) << "round " << round;
  }
  EXPECT_GT(client.retry_count(), 0);
  EXPECT_GT(bus.fault_stats().total(), 0);
}

TEST(PsServiceTest, PullCachedRecoversAfterCheckpointRestore) {
  // A checkpoint restore rewinds shard versions behind the client's
  // back; the epoch in the content tag invalidates the cache so the next
  // cached pull re-ships the true (restored) state instead of trusting a
  // colliding version number.
  SspRule rule;
  PsOptions opts;
  opts.num_servers = 2;
  opts.sync = SyncPolicy::Asp();
  ParameterServer ps(16, 1, rule, opts);
  MessageBus bus;
  PsService service(&ps, &bus, "ps");
  ASSERT_TRUE(service.status().ok());
  RpcWorkerClient client(0, &bus, "ps");

  ASSERT_TRUE(client.Push(0, SparseVector({2}, {1.0})).ok());
  std::vector<double> replica;
  int cmin = -1;
  ASSERT_TRUE(client.PullCached(&replica, &cmin).ok());
  ASSERT_DOUBLE_EQ(replica[2], 1.0);

  const std::string path =
      testing::TempDir() + "/hetps_rpc_pull_ckpt.txt";
  ASSERT_TRUE(SaveCheckpointToFile(ps, path).ok());
  ASSERT_TRUE(client.Push(1, SparseVector({2, 3}, {5.0, 7.0})).ok());
  ASSERT_TRUE(client.PullCached(&replica, &cmin).ok());
  ASSERT_DOUBLE_EQ(replica[2], 6.0);
  ASSERT_TRUE(RestoreCheckpointFromFile(&ps, path).ok());
  std::remove(path.c_str());

  ASSERT_TRUE(client.PullCached(&replica, &cmin).ok());
  EXPECT_EQ(replica, ps.Snapshot());
  EXPECT_DOUBLE_EQ(replica[2], 1.0);
  EXPECT_DOUBLE_EQ(replica[3], 0.0);
}

TEST(PsServiceTest, DistributedSgdTrainsOverRpc) {
  // Full mini end-to-end: three worker threads run Algorithm 1 against
  // the PS purely through serialized messages.
  SyntheticConfig cfg;
  cfg.num_examples = 240;
  cfg.num_features = 120;
  cfg.avg_nnz = 6;
  cfg.seed = 21;
  Dataset dataset = GenerateSynthetic(cfg);
  Rng rng(22);
  dataset.Shuffle(&rng);
  LogisticLoss loss;
  FixedRate sched(0.5);

  const int workers = 3;
  RpcHarness h(workers, dataset.dimension(), SyncPolicy::Ssp(2));
  const auto shards = SplitData(dataset.size(), workers,
                                ShardingPolicy::kContiguous);
  std::vector<std::thread> threads;
  for (int m = 0; m < workers; ++m) {
    threads.emplace_back([&, m] {
      RpcWorkerClient client(m, &h.bus, "ps");
      LocalWorkerSgd::Options sgd_opts;
      sgd_opts.batch_size = 8;
      LocalWorkerSgd sgd(&dataset, shards[static_cast<size_t>(m)], &loss,
                         &sched, sgd_opts);
      std::vector<double> replica(
          static_cast<size_t>(dataset.dimension()), 0.0);
      int cp = 0;
      for (int c = 0; c < 10; ++c) {
        SparseVector update;
        sgd.RunClock(c, &replica, &update);
        ASSERT_TRUE(client.Push(c, update).ok());
        if (SyncPolicy::Ssp(2).NeedsPull(c, cp)) {
          ASSERT_TRUE(client.WaitUntilCanAdvance(c + 1).ok());
          int cmin = 0;
          ASSERT_TRUE(client.Pull(&replica, &cmin).ok());
          cp = cmin;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double objective =
      dataset.Objective(loss, h.ps.Snapshot(), 1e-4);
  EXPECT_LT(objective, 0.5);
  EXPECT_GE(h.bus.delivered_count(), workers * 10);
}

TEST(PsServiceTest, ReportClockFeedsStragglerStatisticsAndHook) {
  DynSgdRule rule;
  MessageBus bus;
  PsOptions o;
  o.num_servers = 2;
  o.sync = SyncPolicy::Asp();
  ParameterServer ps(8, 2, rule, o);
  int hook_worker = -1;
  int hook_clock = -1;
  double hook_seconds = 0.0;
  int hook_calls = 0;
  PsServiceOptions svc;
  svc.on_clock_report = [&](int worker, int clock, double seconds) {
    hook_worker = worker;
    hook_clock = clock;
    hook_seconds = seconds;
    ++hook_calls;
  };
  PsService service(&ps, &bus, "ps", svc);
  ASSERT_TRUE(service.status().ok());

  RpcWorkerClient client(0, &bus, "ps");
  ASSERT_TRUE(client.ReportClock(3, 2.5).ok());
  // The report landed in the master's straggler statistics...
  EXPECT_DOUBLE_EQ(ps.master()->LastClockTime(0), 2.5);
  // ...and the rebalance hook saw it after the fold.
  EXPECT_EQ(hook_calls, 1);
  EXPECT_EQ(hook_worker, 0);
  EXPECT_EQ(hook_clock, 3);
  EXPECT_DOUBLE_EQ(hook_seconds, 2.5);

  // Garbage timings are refused before they can poison the statistics,
  // and the hook must not fire for them.
  EXPECT_TRUE(client.ReportClock(4, -1.0).IsInvalidArgument());
  EXPECT_EQ(hook_calls, 1);
  EXPECT_DOUBLE_EQ(ps.master()->LastClockTime(0), 2.5);
}

TEST(PsServiceTest, EvictedSenderMayOnlyReadmit) {
  DynSgdRule rule;
  MessageBus bus;
  PsOptions o;
  o.num_servers = 2;
  o.sync = SyncPolicy::Asp();
  ParameterServer ps(8, 2, rule, o);
  double now = 0.0;
  PsServiceOptions svc;
  svc.liveness.heartbeat_timeout_seconds = 5.0;
  svc.liveness.now_fn = [&now] { return now; };
  PsService service(&ps, &bus, "ps", svc);
  ASSERT_TRUE(service.status().ok());
  RpcWorkerClient c0(0, &bus, "ps", RpcRetryPolicy::NoRetry());
  RpcWorkerClient c1(1, &bus, "ps", RpcRetryPolicy::NoRetry());
  ASSERT_TRUE(c0.Push(0, SparseVector({1}, {1.0})).ok());
  ASSERT_TRUE(c1.Push(0, SparseVector({2}, {1.0})).ok());

  // Worker 1 goes silent past the timeout; worker 0's next request
  // (which beats for itself first) sweeps the zombie out.
  now = 10.0;
  ASSERT_TRUE(c0.Push(1, SparseVector({1}, {1.0})).ok());
  ASSERT_FALSE(ps.IsWorkerLive(1));

  // Every op except kReadmit from the zombie is refused — it must not
  // sneak state in behind the eviction's back.
  std::vector<double> replica;
  int cp = 0;
  EXPECT_TRUE(c1.Pull(&replica, &cp).IsFailedPrecondition());
  EXPECT_TRUE(c1.Push(1, SparseVector({2}, {1.0})).IsFailedPrecondition());
  EXPECT_TRUE(c1.ReportClock(1, 1.0).IsFailedPrecondition());

  // Rejoining at the current frontier goes through (the one permitted
  // op), re-enrolls the worker with the heartbeat monitor, and restores
  // normal service.
  ASSERT_TRUE(c1.Readmit(ps.cmin()).ok());
  EXPECT_TRUE(ps.IsWorkerLive(1));
  EXPECT_TRUE(c1.Pull(&replica, &cp).ok());
  EXPECT_NE(service.heartbeat_monitor(), nullptr);
}

TEST(PsServiceTest, ReadmitBehindCminIsRefusedOverTheWire) {
  DynSgdRule rule;
  MessageBus bus;
  PsOptions o;
  o.num_servers = 2;
  o.sync = SyncPolicy::Asp();
  ParameterServer ps(8, 2, rule, o);
  double now = 0.0;
  PsServiceOptions svc;
  svc.liveness.heartbeat_timeout_seconds = 5.0;
  svc.liveness.now_fn = [&now] { return now; };
  PsService service(&ps, &bus, "ps", svc);
  ASSERT_TRUE(service.status().ok());
  RpcWorkerClient c0(0, &bus, "ps", RpcRetryPolicy::NoRetry());
  RpcWorkerClient c1(1, &bus, "ps", RpcRetryPolicy::NoRetry());
  for (int c = 0; c < 3; ++c) {
    ASSERT_TRUE(c0.Push(c, SparseVector({1}, {1.0})).ok());
    ASSERT_TRUE(c1.Push(c, SparseVector({2}, {1.0})).ok());
  }
  now = 10.0;
  ASSERT_TRUE(c0.Push(3, SparseVector({1}, {1.0})).ok());
  ASSERT_FALSE(ps.IsWorkerLive(1));
  ASSERT_GT(ps.cmin(), 0);

  // Rejoining *behind* cmin would violate Theorem 3's staleness window
  // (its stale pushes could land under already-consolidated clocks), so
  // the request is refused and the worker stays out...
  EXPECT_TRUE(c1.Readmit(0).IsFailedPrecondition());
  EXPECT_FALSE(ps.IsWorkerLive(1));
  // ...but a corrected rejoin at the frontier succeeds.
  ASSERT_TRUE(c1.Readmit(ps.cmin()).ok());
  EXPECT_TRUE(ps.IsWorkerLive(1));
}

}  // namespace
}  // namespace hetps
