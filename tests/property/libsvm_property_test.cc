// Property tests for LIBSVM I/O: any generated dataset survives a
// write/read round trip exactly, and the parser never crashes on
// fuzzed-but-bounded garbage (it returns Status instead).

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "data/libsvm_io.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace hetps {
namespace {

class LibSvmRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LibSvmRoundTripTest, WriteReadIsIdentity) {
  SyntheticConfig cfg;
  cfg.num_examples = 60;
  cfg.num_features = 90;
  cfg.avg_nnz = 7;
  cfg.binary_features = GetParam() % 2 == 0;
  cfg.seed = GetParam();
  const Dataset original = GenerateSynthetic(cfg);
  const std::string path =
      testing::TempDir() + "/hetps_rt_" + std::to_string(GetParam());
  ASSERT_TRUE(WriteLibSvmFile(original, path).ok());
  auto reread = ReadLibSvmFile(path);
  ASSERT_TRUE(reread.ok());
  ASSERT_EQ(reread.value().size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reread.value().example(i).label, original.example(i).label);
    const auto& a = original.example(i).features;
    const auto& b = reread.value().example(i).features;
    ASSERT_EQ(a.nnz(), b.nnz());
    for (size_t k = 0; k < a.nnz(); ++k) {
      EXPECT_EQ(a.index(k), b.index(k));
      EXPECT_NEAR(a.value(k), b.value(k), 1e-12);
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LibSvmRoundTripTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(LibSvmFuzzTest, GarbageNeverCrashesOnlyErrorsOrParses) {
  Rng rng(2024);
  const std::string alphabet = "01-+.: \teE#\nabcxyz";
  for (int trial = 0; trial < 300; ++trial) {
    std::string content;
    const size_t len = 1 + rng.NextUint64(120);
    for (size_t i = 0; i < len; ++i) {
      content.push_back(
          alphabet[rng.NextUint64(alphabet.size())]);
    }
    // Must not crash; any Status outcome is acceptable.
    auto result = ParseLibSvm(content);
    if (result.ok()) {
      // Parsed content must satisfy dataset invariants.
      const Dataset& d = result.value();
      for (size_t i = 0; i < d.size(); ++i) {
        EXPECT_LE(d.example(i).features.MinimumDimension(),
                  d.dimension());
      }
    }
  }
}

}  // namespace
}  // namespace hetps
