// Property-style sweeps over the event simulator: protocol invariants
// that must hold for any (protocol, staleness, cluster) combination.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/consolidation.h"
#include "core/dyn_sgd.h"
#include "core/learning_rate.h"
#include "data/synthetic.h"
#include "sim/event_sim.h"
#include "util/rng.h"

namespace hetps {
namespace {

const Dataset& SharedData() {
  static const Dataset* d = [] {
    SyntheticConfig cfg;
    cfg.num_examples = 240;
    cfg.num_features = 160;
    cfg.avg_nnz = 6;
    cfg.seed = 91;
    auto* out = new Dataset(GenerateSynthetic(cfg));
    Rng rng(92);
    out->Shuffle(&rng);
    return out;
  }();
  return *d;
}

struct SweepCase {
  Protocol protocol;
  int staleness;
  double hl;
  int workers;
};

class ProtocolSweepTest : public ::testing::TestWithParam<SweepCase> {};

SimResult RunCase(const SweepCase& c, const ConsolidationRule& rule,
                  double sigma) {
  SimOptions opts;
  opts.max_clocks = 10;
  opts.stop_on_convergence = false;
  opts.eval_every_pushes = 20;
  opts.eval_sample = 240;
  switch (c.protocol) {
    case Protocol::kBsp:
      opts.sync = SyncPolicy::Bsp();
      break;
    case Protocol::kAsp:
      opts.sync = SyncPolicy::Asp();
      break;
    case Protocol::kSsp:
      opts.sync = SyncPolicy::Ssp(c.staleness);
      break;
  }
  FixedRate sched(sigma);
  LogisticLoss loss;
  return RunSimulation(SharedData(),
                       ClusterConfig::WithStragglers(c.workers, 2, c.hl),
                       rule, sched, loss, opts);
}

TEST_P(ProtocolSweepTest, EveryWorkerCompletesEveryClock) {
  const SweepCase c = GetParam();
  ConRule rule;
  const SimResult r = RunCase(c, rule, 0.3);
  ASSERT_EQ(r.worker_breakdown.size(), static_cast<size_t>(c.workers));
  for (const auto& b : r.worker_breakdown) {
    EXPECT_EQ(b.clocks_completed, 10);
  }
  EXPECT_EQ(r.total_pushes, int64_t{10} * c.workers);
}

TEST_P(ProtocolSweepTest, SimulatedTimeIsPositiveAndBounded) {
  const SweepCase c = GetParam();
  ConRule rule;
  const SimResult r = RunCase(c, rule, 0.3);
  EXPECT_GT(r.total_sim_seconds, 0.0);
  EXPECT_LT(r.total_sim_seconds, 1e6);
  // Run time never exceeds total simulated time.
  EXPECT_LE(r.run_time_seconds, r.total_sim_seconds + 1e-9);
}

TEST_P(ProtocolSweepTest, TraceAccountingIsConsistent) {
  const SweepCase c = GetParam();
  ConRule rule;
  const SimResult r = RunCase(c, rule, 0.3);
  for (const auto& b : r.worker_breakdown) {
    EXPECT_GE(b.compute_seconds, 0.0);
    EXPECT_GE(b.comm_seconds, 0.0);
    EXPECT_GE(b.wait_seconds, 0.0);
    // No component can exceed the whole run.
    EXPECT_LE(b.compute_seconds, r.total_sim_seconds + 1e-9);
    EXPECT_LE(b.wait_seconds, r.total_sim_seconds + 1e-9);
  }
}

TEST_P(ProtocolSweepTest, SspWindowNeverViolated) {
  // The fastest worker may lead the slowest by at most s+1 clocks at any
  // push boundary. We verify post-hoc via the mean staleness proxy and
  // clock counts (all workers finished, so the final gap is 0); the live
  // check happens inside ClockTable which would crash on violation.
  const SweepCase c = GetParam();
  DynSgdRule rule;
  const SimResult r = RunCase(c, rule, 0.3);
  EXPECT_GE(r.mean_staleness, 1.0);
  EXPECT_LE(r.mean_staleness, static_cast<double>(c.workers));
}

TEST_P(ProtocolSweepTest, HigherHlNeverSpeedsUpTheCluster) {
  const SweepCase c = GetParam();
  if (c.hl == 1.0) GTEST_SKIP() << "baseline case";
  ConRule rule;
  SweepCase base = c;
  base.hl = 1.0;
  const SimResult fast = RunCase(base, rule, 0.3);
  const SimResult slow = RunCase(c, rule, 0.3);
  EXPECT_GE(slow.total_sim_seconds, 0.95 * fast.total_sim_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolSweepTest,
    ::testing::Values(SweepCase{Protocol::kBsp, 0, 1.0, 4},
                      SweepCase{Protocol::kBsp, 0, 3.0, 4},
                      SweepCase{Protocol::kAsp, 0, 2.0, 4},
                      SweepCase{Protocol::kSsp, 1, 2.0, 4},
                      SweepCase{Protocol::kSsp, 3, 1.0, 6},
                      SweepCase{Protocol::kSsp, 3, 4.0, 6},
                      SweepCase{Protocol::kSsp, 10, 2.0, 3}));

TEST(SimulatorSeedPropertyTest, DifferentSeedsDifferentTrajectories) {
  ConRule rule;
  FixedRate sched(0.3);
  LogisticLoss loss;
  SimOptions a;
  a.max_clocks = 6;
  a.stop_on_convergence = false;
  a.eval_sample = 240;
  SimOptions b = a;
  b.seed = 1234;
  const SimResult ra =
      RunSimulation(SharedData(), ClusterConfig::WithStragglers(4, 2, 2.0),
                    rule, sched, loss, a);
  const SimResult rb =
      RunSimulation(SharedData(), ClusterConfig::WithStragglers(4, 2, 2.0),
                    rule, sched, loss, b);
  EXPECT_NE(ra.total_sim_seconds, rb.total_sim_seconds);
}

}  // namespace
}  // namespace hetps
