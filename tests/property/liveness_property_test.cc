// Randomized interleavings of the liveness plane's verbs — evict,
// readmit, report-clock-time, push — against the straggler detector's
// safety invariants. The load-balancing plane trusts DetectStragglers /
// FastestWorker blindly, so these must hold on EVERY reachable state:
//
//   1. a dead worker is never flagged as a straggler (its frozen clock
//      time would otherwise trigger shard moves forever),
//   2. a freshly readmitted worker is never flagged before its first
//      post-rejoin report (its pre-eviction time belongs to a dead
//      timing regime), and never crowned fastest either,
//   3. the fastest worker is always a live one.

#include <gtest/gtest.h>

#include <vector>

#include "core/dyn_sgd.h"
#include "math/sparse_vector.h"
#include "ps/parameter_server.h"
#include "util/rng.h"

namespace hetps {
namespace {

TEST(LivenessPropertyTest, StragglerDetectionRespectsMembership) {
  constexpr int kWorkers = 6;
  constexpr int kSteps = 400;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    DynSgdRule rule;
    PsOptions o;
    o.num_servers = 2;
    o.sync = SyncPolicy::Asp();
    ParameterServer ps(16, kWorkers, rule, o);
    Rng rng(seed * 977 + 13);
    std::vector<int> next_clock(kWorkers, 0);
    // fresh[w]: no clock-time report since w's last (re)admission — its
    // timing slot must read 0 and it must stay out of the statistics.
    std::vector<char> fresh(kWorkers, 1);
    int prev_cmin = ps.cmin();
    for (int step = 0; step < kSteps; ++step) {
      const int w = static_cast<int>(rng.NextUint64(kWorkers));
      switch (rng.NextUint64(8)) {
        case 0:
          // May be refused (already dead, or last live worker) — both
          // fine; the invariants must hold either way.
          ps.EvictWorker(w);
          break;
        case 1:
          if (!ps.IsWorkerLive(w)) {
            const Status st = ps.ReadmitWorker(w, ps.cmin());
            ASSERT_TRUE(st.ok()) << st.ToString();
            fresh[static_cast<size_t>(w)] = 1;
            next_clock[static_cast<size_t>(w)] = ps.cmin();
          }
          break;
        case 2:
          // A rejoin pinned at clock 0 goes stale once cmin advances;
          // the table must refuse it without corrupting membership.
          if (!ps.IsWorkerLive(w)) {
            const Status st = ps.ReadmitWorker(w, 0);
            if (st.ok()) {
              fresh[static_cast<size_t>(w)] = 1;
              next_clock[static_cast<size_t>(w)] = 0;
            } else {
              EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
              EXPECT_FALSE(ps.IsWorkerLive(w));
            }
          }
          break;
        case 3:
        case 4:
        case 5: {
          const double seconds = rng.NextDouble(0.5, 4.0);
          ps.master()->ReportClockTime(w, seconds);
          // Reports from dead workers are dropped, so only a live
          // reporter sheds its fresh status.
          if (ps.IsWorkerLive(w)) fresh[static_cast<size_t>(w)] = 0;
          break;
        }
        default:
          if (ps.IsWorkerLive(w)) {
            ps.Push(w, next_clock[static_cast<size_t>(w)]++,
                    SparseVector({1}, {0.1}));
          }
          break;
      }

      for (int s : ps.master()->DetectStragglers(1.2)) {
        EXPECT_TRUE(ps.IsWorkerLive(s))
            << "seed " << seed << " step " << step
            << ": dead worker " << s << " flagged as straggler";
        EXPECT_EQ(fresh[static_cast<size_t>(s)], 0)
            << "seed " << seed << " step " << step
            << ": fresh readmit " << s << " flagged as straggler";
      }
      const int fastest = ps.master()->FastestWorker();
      if (fastest >= 0) {
        EXPECT_TRUE(ps.IsWorkerLive(fastest))
            << "seed " << seed << " step " << step
            << ": dead worker " << fastest << " crowned fastest";
        EXPECT_EQ(fresh[static_cast<size_t>(fastest)], 0)
            << "seed " << seed << " step " << step
            << ": fresh readmit " << fastest << " crowned fastest";
      }
      // The SSP clock floor never regresses, whatever the interleaving.
      EXPECT_GE(ps.cmin(), prev_cmin);
      prev_cmin = ps.cmin();
    }
  }
}

}  // namespace
}  // namespace hetps
