// Property-based tests over randomized push/pull sequences: invariants of
// the consolidation rules that must hold for ANY interleaving.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/consolidation.h"
#include "core/dyn_sgd.h"
#include "core/regret_bounds.h"
#include "core/sync_policy.h"
#include "util/rng.h"

namespace hetps {
namespace {

struct RandomWorkload {
  int num_workers;
  int num_clocks;
  size_t dim;
  uint64_t seed;
};

class DynSgdPropertyTest
    : public ::testing::TestWithParam<RandomWorkload> {};

// Generates a random but valid interleaving: each worker pushes clocks
// 0..C-1 in order; global order interleaves workers randomly; pulls are
// injected at random points. Returns the per-(worker, clock) updates.
struct Trace {
  struct Op {
    bool is_pull;
    int worker;
    int clock;
    SparseVector update;
  };
  std::vector<Op> ops;
};

Trace MakeTrace(const RandomWorkload& w) {
  Rng rng(w.seed);
  std::vector<int> next_clock(static_cast<size_t>(w.num_workers), 0);
  Trace trace;
  int remaining = w.num_workers * w.num_clocks;
  while (remaining > 0) {
    const int m =
        static_cast<int>(rng.NextUint64(static_cast<uint64_t>(
            w.num_workers)));
    if (next_clock[static_cast<size_t>(m)] >= w.num_clocks) continue;
    if (rng.NextBernoulli(0.3)) {
      trace.ops.push_back({true, m, 0, SparseVector()});
    }
    SparseVector u;
    for (size_t j = 0; j < w.dim; ++j) {
      if (rng.NextBernoulli(0.4)) {
        u.PushBack(static_cast<int64_t>(j), rng.NextGaussian());
      }
    }
    trace.ops.push_back(
        {false, m, next_clock[static_cast<size_t>(m)], std::move(u)});
    ++next_clock[static_cast<size_t>(m)];
    --remaining;
  }
  return trace;
}

TEST_P(DynSgdPropertyTest, ParameterEqualsPerVersionMeans) {
  // Invariant (§5.1): once every update of a version has arrived, the
  // version contributes exactly the mean of its updates; at any moment
  // the parameter equals the sum over versions of the current mean of
  // the updates received for that version.
  const RandomWorkload w = GetParam();
  DynSgdRule rule;  // clock-aligned: version == clock
  rule.Reset(w.dim, w.num_workers);
  ParamBlock param(w.dim);
  const Trace trace = MakeTrace(w);

  std::map<int, std::vector<SparseVector>> by_version;
  for (const auto& op : trace.ops) {
    if (op.is_pull) {
      rule.OnPull(op.worker, 0);
      continue;
    }
    rule.OnPush(op.worker, op.clock, op.update, &param);
    by_version[op.clock].push_back(op.update);

    std::vector<double> expected(w.dim, 0.0);
    for (const auto& [version, updates] : by_version) {
      const double inv = 1.0 / static_cast<double>(updates.size());
      for (const auto& u : updates) u.AddTo(&expected, inv);
    }
    const std::vector<double> actual = rule.Materialize(param);
    for (size_t j = 0; j < w.dim; ++j) {
      ASSERT_NEAR(actual[j], expected[j], 1e-9)
          << "dim " << j << " after " << by_version.size() << " versions";
    }
  }
}

TEST_P(DynSgdPropertyTest, DeferredAndImmediateModesAgree) {
  const RandomWorkload w = GetParam();
  DynSgdRule immediate;
  DynSgdRule::Options dopts;
  dopts.mode = DynSgdRule::ApplyMode::kDeferred;
  DynSgdRule deferred(dopts);
  immediate.Reset(w.dim, w.num_workers);
  deferred.Reset(w.dim, w.num_workers);
  ParamBlock wi(w.dim);
  ParamBlock wd(w.dim);
  for (const auto& op : MakeTrace(w).ops) {
    if (op.is_pull) {
      immediate.OnPull(op.worker, 0);
      deferred.OnPull(op.worker, 0);
      continue;
    }
    immediate.OnPush(op.worker, op.clock, op.update, &wi);
    deferred.OnPush(op.worker, op.clock, op.update, &wd);
    const auto a = immediate.Materialize(wi);
    const auto b = deferred.Materialize(wd);
    for (size_t j = 0; j < w.dim; ++j) {
      ASSERT_NEAR(a[j], b[j], 1e-9);
    }
  }
}

TEST_P(DynSgdPropertyTest, LiveVersionWindowRespectsTheorem3) {
  // The number of live versions never exceeds cmax - cmin + 1, so the
  // auxiliary memory obeys Eq. (7) / Theorem 3.
  const RandomWorkload w = GetParam();
  DynSgdRule rule;
  rule.Reset(w.dim, w.num_workers);
  ParamBlock param(w.dim);
  ClockTable clocks(w.num_workers);
  for (const auto& op : MakeTrace(w).ops) {
    if (op.is_pull) continue;
    rule.OnPush(op.worker, op.clock, op.update, &param);
    clocks.OnPush(op.worker, op.clock);
    const int window = clocks.cmax() - clocks.cmin() + 1;
    ASSERT_LE(rule.ActiveVersionCount(), static_cast<size_t>(window));
  }
}

TEST_P(DynSgdPropertyTest, StalenessWeightsAreProbabilities) {
  const RandomWorkload w = GetParam();
  DynSgdRule rule;
  rule.Reset(w.dim, w.num_workers);
  ParamBlock param(w.dim);
  for (const auto& op : MakeTrace(w).ops) {
    if (op.is_pull) continue;
    rule.OnPush(op.worker, op.clock, op.update, &param);
    ASSERT_GE(rule.ObservedMeanStaleness(), 1.0);
    ASSERT_LE(rule.ObservedMeanStaleness(),
              static_cast<double>(w.num_workers));
  }
}

TEST_P(DynSgdPropertyTest, ConRuleIsLinearInUpdates) {
  // ConSGD invariant: the parameter is always λg times the plain sum.
  const RandomWorkload w = GetParam();
  ConRule con;
  SspRule ssp;
  con.Reset(w.dim, w.num_workers);
  ssp.Reset(w.dim, w.num_workers);
  ParamBlock wc(w.dim);
  ParamBlock ws(w.dim);
  const double lambda = 1.0 / static_cast<double>(w.num_workers);
  for (const auto& op : MakeTrace(w).ops) {
    if (op.is_pull) continue;
    con.OnPush(op.worker, op.clock, op.update, &wc);
    ssp.OnPush(op.worker, op.clock, op.update, &ws);
    for (size_t j = 0; j < w.dim; ++j) {
      ASSERT_NEAR(wc.At(j), lambda * ws.At(j), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, DynSgdPropertyTest,
    ::testing::Values(RandomWorkload{2, 6, 4, 11},
                      RandomWorkload{3, 5, 6, 12},
                      RandomWorkload{5, 8, 3, 13},
                      RandomWorkload{8, 4, 5, 14},
                      RandomWorkload{4, 12, 2, 15}));

}  // namespace
}  // namespace hetps
