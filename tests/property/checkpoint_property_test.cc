// Property test: for ANY random traffic pattern, (a) a checkpoint
// round-trip is an exact state copy, and (b) continuing identical traffic
// on the original and the restored server keeps them bit-identical.

#include <gtest/gtest.h>

#include <sstream>

#include "core/dyn_sgd.h"
#include "ps/checkpoint.h"
#include "util/rng.h"

namespace hetps {
namespace {

struct TrafficCase {
  uint64_t seed;
  int workers;
  int64_t dim;
  int clocks;
  bool deferred;
};

class CheckpointPropertyTest
    : public ::testing::TestWithParam<TrafficCase> {};

SparseVector RandomUpdate(Rng* rng, int64_t dim) {
  SparseVector u;
  for (int64_t j = 0; j < dim; ++j) {
    if (rng->NextBernoulli(0.35)) u.PushBack(j, rng->NextGaussian());
  }
  return u;
}

TEST_P(CheckpointPropertyTest, RoundTripAndContinuationAreExact) {
  const TrafficCase c = GetParam();
  DynSgdRule::Options dyn_opts;
  if (c.deferred) dyn_opts.mode = DynSgdRule::ApplyMode::kDeferred;
  DynSgdRule rule(dyn_opts);
  PsOptions opts;
  opts.num_servers = 2;
  opts.partitions_per_server = 2;
  opts.sync = SyncPolicy::Ssp(2);
  ParameterServer ps(c.dim, c.workers, rule, opts);

  Rng rng(c.seed);
  // Random prefix of traffic (workers interleaved, monotone clocks).
  std::vector<int> next_clock(static_cast<size_t>(c.workers), 0);
  auto push_some = [&](ParameterServer* target, Rng* r, int rounds) {
    for (int k = 0; k < rounds; ++k) {
      const int m = static_cast<int>(
          r->NextUint64(static_cast<uint64_t>(c.workers)));
      if (next_clock[static_cast<size_t>(m)] >= c.clocks) continue;
      target->Push(m, next_clock[static_cast<size_t>(m)],
                   RandomUpdate(r, c.dim));
      if (r->NextBernoulli(0.4)) target->PullFull(m);
    }
  };
  // NOTE: push_some mutates next_clock, so for the continuation phase we
  // snapshot and replay with a fresh RNG of the same seed.
  push_some(&ps, &rng, c.workers * c.clocks / 2);

  std::stringstream buffer;
  ASSERT_TRUE(ps.SaveCheckpoint(buffer).ok());
  ParameterServer restored(c.dim, c.workers, rule, opts);
  ASSERT_TRUE(restored.LoadCheckpoint(buffer).ok());
  ASSERT_EQ(restored.Snapshot(), ps.Snapshot());
  ASSERT_EQ(restored.cmin(), ps.cmin());
  ASSERT_EQ(restored.StableVersion(), ps.StableVersion());

  // Identical continuation traffic keeps the two servers identical.
  std::vector<int> clocks_copy = next_clock;
  Rng cont_a(c.seed ^ 0xBEEF);
  push_some(&ps, &cont_a, c.workers * 3);
  next_clock = clocks_copy;
  Rng cont_b(c.seed ^ 0xBEEF);
  push_some(&restored, &cont_b, c.workers * 3);
  EXPECT_EQ(restored.Snapshot(), ps.Snapshot());
  EXPECT_EQ(restored.cmin(), ps.cmin());
  EXPECT_EQ(restored.AuxMemoryBytes(), ps.AuxMemoryBytes());
}

INSTANTIATE_TEST_SUITE_P(
    RandomTraffic, CheckpointPropertyTest,
    ::testing::Values(TrafficCase{101, 2, 12, 6, false},
                      TrafficCase{102, 3, 20, 5, false},
                      TrafficCase{103, 4, 8, 8, true},
                      TrafficCase{104, 2, 30, 4, true},
                      TrafficCase{105, 5, 16, 6, false}));

// Regression (liveness PR): restoring a checkpoint must wipe the
// master's per-worker timing history and revive evicted workers. Before
// the fix, stale clock_times_ survived LoadCheckpoint, so the restored
// run misclassified stragglers from its very first clock, and an
// eviction taken before the save poisoned membership after it.
TEST(CheckpointLivenessTest, RestoreResetsTimingAndMembership) {
  DynSgdRule rule;
  PsOptions opts;
  opts.num_servers = 2;
  opts.partitions_per_server = 2;
  opts.sync = SyncPolicy::Ssp(2);
  ParameterServer ps(16, 3, rule, opts);

  ps.Push(0, 0, SparseVector({0}, {1.0}));
  ps.Push(1, 0, SparseVector({8}, {2.0}));
  ps.master()->ReportClockTime(0, 1.0);
  ps.master()->ReportClockTime(1, 9.0);  // pre-crash straggler
  std::stringstream buffer;
  ASSERT_TRUE(ps.SaveCheckpoint(buffer).ok());

  // Post-save history that must NOT survive the restore: an eviction and
  // more timing reports.
  ASSERT_TRUE(ps.EvictWorker(2));
  ps.master()->ReportClockTime(0, 50.0);

  ASSERT_TRUE(ps.LoadCheckpoint(buffer).ok());
  EXPECT_TRUE(ps.IsWorkerLive(2));
  EXPECT_EQ(ps.num_live_workers(), 3);
  EXPECT_TRUE(ps.master()->DetectStragglers().empty());
  EXPECT_EQ(ps.master()->FastestWorker(), -1);
  EXPECT_DOUBLE_EQ(ps.master()->LastClockTime(1), 0.0);
  // The revived worker participates in the admission gate again: it
  // pins cmin until it pushes.
  EXPECT_EQ(ps.cmin(), 0);
  ps.Push(2, 0, SparseVector({4}, {3.0}));
  EXPECT_EQ(ps.cmin(), 1);
}

}  // namespace
}  // namespace hetps
