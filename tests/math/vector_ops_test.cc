#include "math/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hetps {
namespace {

TEST(VectorOpsTest, Axpy) {
  std::vector<double> y = {1.0, 2.0};
  Axpy(2.0, {10.0, 20.0}, &y);
  EXPECT_DOUBLE_EQ(y[0], 21.0);
  EXPECT_DOUBLE_EQ(y[1], 42.0);
}

// Size validation moved to HETPS_DCHECK (hot-path ops must not pay a
// per-call branch in release builds), so the death is debug-only.
#ifndef NDEBUG
TEST(VectorOpsDeathTest, AxpySizeCheckedInDebug) {
  std::vector<double> y = {1.0};
  std::vector<double> x = {1.0, 2.0};
  EXPECT_DEATH(Axpy(1.0, x, &y), "size mismatch");
}
#endif

TEST(VectorOpsTest, Dot) {
  EXPECT_DOUBLE_EQ(Dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(VectorOpsTest, ScaleAndZero) {
  std::vector<double> x = {1.0, -2.0};
  Scale(-3.0, &x);
  EXPECT_DOUBLE_EQ(x[0], -3.0);
  EXPECT_DOUBLE_EQ(x[1], 6.0);
  SetZero(&x);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(VectorOpsTest, Norms) {
  const std::vector<double> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredNorm(x), 25.0);
  EXPECT_DOUBLE_EQ(Norm2(x), 5.0);
}

TEST(VectorOpsTest, SquaredDistance) {
  EXPECT_DOUBLE_EQ(SquaredDistance({0.0, 0.0}, {3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1.0}, {1.0}), 0.0);
}

TEST(VectorOpsTest, CountNonZero) {
  const std::vector<double> x = {0.0, 1e-9, 0.5, -0.5};
  EXPECT_EQ(CountNonZero(x), 3u);
  EXPECT_EQ(CountNonZero(x, 1e-6), 2u);
}

}  // namespace
}  // namespace hetps
