#include "math/sparse_vector.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

TEST(SparseVectorTest, EmptyByDefault) {
  SparseVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.nnz(), 0u);
  EXPECT_EQ(v.MinimumDimension(), 0);
  EXPECT_EQ(v.SquaredNorm(), 0.0);
}

TEST(SparseVectorTest, PushBackMaintainsOrder) {
  SparseVector v;
  v.PushBack(1, 0.5);
  v.PushBack(5, -2.0);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.index(1), 5);
  EXPECT_DOUBLE_EQ(v.value(1), -2.0);
  EXPECT_EQ(v.MinimumDimension(), 6);
}

TEST(SparseVectorDeathTest, RejectsOutOfOrderPush) {
  SparseVector v;
  v.PushBack(3, 1.0);
  EXPECT_DEATH(v.PushBack(3, 2.0), "strictly increasing");
  EXPECT_DEATH(v.PushBack(1, 2.0), "strictly increasing");
}

TEST(SparseVectorDeathTest, ConstructorValidates) {
  EXPECT_DEATH(SparseVector({2, 1}, {1.0, 2.0}), "strictly increasing");
  EXPECT_DEATH(SparseVector({1}, {1.0, 2.0}), "differ in length");
}

TEST(SparseVectorTest, FromDenseDropsZerosAndSmall) {
  const std::vector<double> dense = {0.0, 1.0, 0.0, 1e-9, -3.0};
  SparseVector v = SparseVector::FromDense(dense, 1e-6);
  ASSERT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.index(0), 1);
  EXPECT_EQ(v.index(1), 4);
  EXPECT_DOUBLE_EQ(v.value(1), -3.0);
}

TEST(SparseVectorTest, ValueAtBinarySearch) {
  SparseVector v({0, 10, 100}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(v.ValueAt(0), 1.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(10), 2.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(100), 3.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(5), 0.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(1000), 0.0);
}

TEST(SparseVectorTest, DotWithDense) {
  SparseVector v({0, 2}, {2.0, 3.0});
  const std::vector<double> dense = {1.0, 10.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Dot(dense), 2.0 + 12.0);
}

TEST(SparseVectorTest, DotIgnoresIndicesBeyondDense) {
  SparseVector v({0, 100}, {2.0, 3.0});
  const std::vector<double> dense = {5.0};
  EXPECT_DOUBLE_EQ(v.Dot(dense), 10.0);
}

TEST(SparseVectorTest, AddToScatter) {
  SparseVector v({1, 3}, {1.0, -1.0});
  std::vector<double> dense(4, 10.0);
  v.AddTo(&dense, 2.0);
  EXPECT_DOUBLE_EQ(dense[0], 10.0);
  EXPECT_DOUBLE_EQ(dense[1], 12.0);
  EXPECT_DOUBLE_EQ(dense[3], 8.0);
}

TEST(SparseVectorDeathTest, AddToRangeChecked) {
  SparseVector v({5}, {1.0});
  std::vector<double> dense(3, 0.0);
  EXPECT_DEATH(v.AddTo(&dense), "out of dense range");
}

TEST(SparseVectorTest, ScaleAndNorm) {
  SparseVector v({0, 1}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  v.Scale(2.0);
  EXPECT_DOUBLE_EQ(v.value(0), 6.0);
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 100.0);
}

TEST(SparseVectorTest, FilteredDropsSmallEntries) {
  SparseVector v({0, 1, 2}, {1e-9, 0.5, -1e-8});
  SparseVector f = v.Filtered(1e-6);
  ASSERT_EQ(f.nnz(), 1u);
  EXPECT_EQ(f.index(0), 1);
}

TEST(SparseVectorTest, AddMergesSortedSupports) {
  SparseVector a({0, 2, 5}, {1.0, 2.0, 3.0});
  SparseVector b({1, 2, 9}, {10.0, 20.0, 30.0});
  SparseVector c = SparseVector::Add(a, b);
  ASSERT_EQ(c.nnz(), 5u);
  EXPECT_EQ(c.index(0), 0);
  EXPECT_DOUBLE_EQ(c.ValueAt(2), 22.0);
  EXPECT_DOUBLE_EQ(c.ValueAt(9), 30.0);
}

TEST(SparseVectorTest, AddWithScales) {
  SparseVector a({0}, {2.0});
  SparseVector b({0}, {3.0});
  SparseVector c = SparseVector::Add(a, b, 0.5, 2.0);
  EXPECT_DOUBLE_EQ(c.ValueAt(0), 1.0 + 6.0);
}

TEST(SparseVectorTest, MemoryBytesScalesWithNnz) {
  SparseVector v({0, 1, 2}, {1.0, 2.0, 3.0});
  EXPECT_EQ(v.MemoryBytes(), 3 * (sizeof(int64_t) + sizeof(double)));
}

TEST(SparseVectorTest, EqualityAndDebugString) {
  SparseVector a({0, 1}, {1.0, 2.0});
  SparseVector b({0, 1}, {1.0, 2.0});
  SparseVector c({0, 1}, {1.0, 2.5});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.DebugString().find("nnz=2"), std::string::npos);
}

}  // namespace
}  // namespace hetps
