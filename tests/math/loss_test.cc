#include "math/loss.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace hetps {
namespace {

// Finite-difference check of MarginGradient for each loss at several
// points (parameterized sweep).
class LossGradientTest
    : public ::testing::TestWithParam<std::tuple<std::string, double,
                                                 double>> {};

TEST_P(LossGradientTest, MarginGradientMatchesFiniteDifference) {
  const auto& [name, margin, label] = GetParam();
  auto loss = MakeLoss(name);
  const double h = 1e-6;
  const double numeric =
      (loss->Loss(margin + h, label) - loss->Loss(margin - h, label)) /
      (2 * h);
  const double analytic = loss->MarginGradient(margin, label);
  // Hinge is non-differentiable at margin*label == 1; the sweep avoids
  // that point.
  EXPECT_NEAR(analytic, numeric, 1e-4)
      << name << " margin=" << margin << " label=" << label;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LossGradientTest,
    ::testing::Combine(
        ::testing::Values("logistic", "hinge", "squared"),
        ::testing::Values(-2.5, -0.3, 0.2, 1.7, 3.0),
        ::testing::Values(-1.0, 1.0)));

TEST(LogisticLossTest, KnownValues) {
  LogisticLoss loss;
  EXPECT_NEAR(loss.Loss(0.0, 1.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(loss.Loss(0.0, -1.0), std::log(2.0), 1e-12);
  // Confident correct prediction -> near-zero loss.
  EXPECT_LT(loss.Loss(10.0, 1.0), 1e-4);
  // Confident wrong prediction -> ~|margin|.
  EXPECT_NEAR(loss.Loss(-10.0, 1.0), 10.0, 1e-3);
}

TEST(LogisticLossTest, ExtremeMarginsAreFinite) {
  LogisticLoss loss;
  EXPECT_TRUE(std::isfinite(loss.Loss(1000.0, -1.0)));
  EXPECT_TRUE(std::isfinite(loss.Loss(-1000.0, 1.0)));
  EXPECT_TRUE(std::isfinite(loss.MarginGradient(1000.0, -1.0)));
  EXPECT_TRUE(std::isfinite(loss.MarginGradient(-1000.0, 1.0)));
}

TEST(LogisticLossTest, PredictIsSigmoid) {
  LogisticLoss loss;
  EXPECT_NEAR(loss.Predict(0.0), 0.5, 1e-12);
  EXPECT_GT(loss.Predict(3.0), 0.95);
  EXPECT_LT(loss.Predict(-3.0), 0.05);
  EXPECT_DOUBLE_EQ(loss.Predict(100.0), 1.0);
  EXPECT_DOUBLE_EQ(loss.Predict(-100.0), 0.0);
}

TEST(HingeLossTest, KnownValues) {
  HingeLoss loss;
  EXPECT_DOUBLE_EQ(loss.Loss(2.0, 1.0), 0.0);   // outside margin
  EXPECT_DOUBLE_EQ(loss.Loss(0.5, 1.0), 0.5);   // inside margin
  EXPECT_DOUBLE_EQ(loss.Loss(-1.0, 1.0), 2.0);  // wrong side
  EXPECT_DOUBLE_EQ(loss.MarginGradient(2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(loss.MarginGradient(0.5, 1.0), -1.0);
}

TEST(HingeLossTest, PredictIsSign) {
  HingeLoss loss;
  EXPECT_DOUBLE_EQ(loss.Predict(0.7), 1.0);
  EXPECT_DOUBLE_EQ(loss.Predict(-0.7), -1.0);
}

TEST(SquaredLossTest, KnownValues) {
  SquaredLoss loss;
  EXPECT_DOUBLE_EQ(loss.Loss(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(loss.MarginGradient(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(loss.Predict(1.5), 1.5);
}

TEST(MakeLossTest, FactoryByName) {
  EXPECT_EQ(MakeLoss("logistic")->name(), "logistic");
  EXPECT_EQ(MakeLoss("hinge")->name(), "hinge");
  EXPECT_EQ(MakeLoss("squared")->name(), "squared");
}

TEST(MakeLossDeathTest, RejectsUnknown) {
  EXPECT_DEATH(MakeLoss("nope"), "unknown loss");
}

TEST(AccumulateExampleGradientTest, AddsScaledGradient) {
  SquaredLoss loss;
  SparseVector x({0, 2}, {1.0, 2.0});
  std::vector<double> w = {1.0, 0.0, 1.0};  // margin = 3
  std::vector<double> grad(3, 0.0);
  const double value =
      AccumulateExampleGradient(loss, x, 1.0, w, 0.5, &grad);
  EXPECT_DOUBLE_EQ(value, 2.0);  // 0.5*(3-1)^2
  // d/dw = (margin - y) * x scaled by 0.5 -> (1, 0, 2).
  EXPECT_DOUBLE_EQ(grad[0], 1.0);
  EXPECT_DOUBLE_EQ(grad[1], 0.0);
  EXPECT_DOUBLE_EQ(grad[2], 2.0);
}

TEST(AccumulateExampleGradientTest, ZeroGradientSkipsScatter) {
  HingeLoss loss;
  SparseVector x({0}, {1.0});
  std::vector<double> w = {5.0};  // margin 5, outside hinge
  std::vector<double> grad(1, 0.0);
  AccumulateExampleGradient(loss, x, 1.0, w, 1.0, &grad);
  EXPECT_DOUBLE_EQ(grad[0], 0.0);
}

}  // namespace
}  // namespace hetps
