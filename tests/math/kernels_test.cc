#include "math/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace hetps {
namespace kernels {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();

/// Forces one dispatch table for the scope; restores startup selection
/// on exit. Records which table was actually installed (forcing AVX2 on
/// hardware without it falls back to scalar).
class ScopedIsa {
 public:
  explicit ScopedIsa(KernelIsa isa) : installed_(SetKernelIsaForTesting(isa)) {}
  ~ScopedIsa() { ResetKernelIsaForTesting(); }
  KernelIsa installed() const { return installed_; }

 private:
  KernelIsa installed_;
};

/// The ISA levels worth testing on this machine. Scalar always; AVX2
/// when supported (each CI kernels-smoke leg additionally pins
/// HETPS_FORCE_ISA so the startup path is covered too).
std::vector<KernelIsa> TestableIsas() {
  std::vector<KernelIsa> isas = {KernelIsa::kScalar};
  if (CpuSupportsAvx2Fma()) isas.push_back(KernelIsa::kAvx2);
  return isas;
}

/// One ULP at the given magnitude.
double UlpOf(double magnitude) {
  const double m = std::fabs(magnitude);
  if (!std::isfinite(m)) return kDenorm;
  const double up = std::nextafter(m, kInf);
  return up > m ? up - m : kDenorm;
}

/// Reassociated reductions (multi-accumulator SIMD) are not bitwise
/// equal to a sequential sum; their error is bounded by a few ULPs *of
/// the sum of absolute terms* (the condition of the reduction), growing
/// slowly with length. Tolerance: 4 * max(1, n/128) ULP measured at
/// max(|expected|, condition) — tight enough that a real kernel bug
/// (wrong lane, dropped tail, double-applied element) fails by orders
/// of magnitude.
void ExpectParity(double expected, double actual, double condition,
                  size_t n) {
  if (std::isnan(expected)) {
    EXPECT_TRUE(std::isnan(actual));
    return;
  }
  if (std::isinf(expected)) {
    EXPECT_EQ(expected, actual);
    return;
  }
  const double scale =
      std::max({std::fabs(expected), condition, kDenorm});
  const double ulps =
      4.0 * static_cast<double>(std::max<size_t>(1, n / 128));
  EXPECT_NEAR(actual, expected, ulps * UlpOf(scale))
      << "n=" << n << " condition=" << condition;
}

struct Fuzz {
  // Buffers carry one extra leading slot so tests can take data() + 1
  // and exercise deliberately misaligned heads.
  AlignedVector x;
  AlignedVector y;
  std::vector<int64_t> idx;
  std::vector<double> val;
  size_t n = 0;
  size_t nnz = 0;
};

Fuzz MakeFuzz(Rng* rng, size_t n, size_t dense_dim, size_t nnz,
              bool specials) {
  Fuzz f;
  f.n = n;
  f.nnz = nnz;
  const size_t cap = std::max(n, dense_dim) + 1;
  f.x.resize(cap);
  f.y.resize(cap);
  for (size_t i = 0; i < cap; ++i) {
    // Mixed magnitudes: exercise rounding across ~12 decades.
    const double mag = std::pow(10.0, rng->NextDouble(-6.0, 6.0));
    f.x[i] = (rng->NextDouble() - 0.5) * mag;
    f.y[i] = (rng->NextDouble() - 0.5) * mag;
  }
  if (specials && n >= 4) {
    f.x[rng->NextUint64(n)] = kDenorm;
    f.x[rng->NextUint64(n)] = -kDenorm;
    f.y[rng->NextUint64(n)] = kDenorm * 3;
  }
  if (nnz > 0) {
    // Sorted unique indices into [0, dense_dim).
    std::vector<int64_t> pool(dense_dim);
    for (size_t i = 0; i < dense_dim; ++i) {
      pool[i] = static_cast<int64_t>(i);
    }
    for (size_t i = 0; i < nnz; ++i) {
      const size_t j = i + static_cast<size_t>(
                               rng->NextUint64(dense_dim - i));
      std::swap(pool[i], pool[j]);
    }
    f.idx.assign(pool.begin(), pool.begin() + static_cast<int64_t>(nnz));
    std::sort(f.idx.begin(), f.idx.end());
    f.val.resize(nnz);
    for (size_t i = 0; i < nnz; ++i) {
      f.val[i] = (rng->NextDouble() - 0.5) *
                 std::pow(10.0, rng->NextDouble(-4.0, 4.0));
    }
  }
  return f;
}

/// Sizes hitting every tail-handling branch: empty, sub-vector-width,
/// exact widths, width+1, multi-block, odd lengths.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                         31, 32, 33, 63, 64, 100, 127, 128, 129, 1000};

// ---------------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------------

TEST(KernelDispatchTest, ParseKnownNames) {
  KernelIsa isa;
  EXPECT_TRUE(ParseKernelIsa("scalar", &isa));
  EXPECT_EQ(isa, KernelIsa::kScalar);
  EXPECT_TRUE(ParseKernelIsa("avx2", &isa));
  EXPECT_EQ(isa, KernelIsa::kAvx2);
  EXPECT_FALSE(ParseKernelIsa("sse9", &isa));
  EXPECT_FALSE(ParseKernelIsa("", &isa));
}

TEST(KernelDispatchTest, NamesRoundTrip) {
  EXPECT_STREQ(KernelIsaName(KernelIsa::kScalar), "scalar");
  EXPECT_STREQ(KernelIsaName(KernelIsa::kAvx2), "avx2");
}

TEST(KernelDispatchTest, ForcingReportsInstalledTable) {
  {
    ScopedIsa forced(KernelIsa::kScalar);
    EXPECT_EQ(forced.installed(), KernelIsa::kScalar);
    EXPECT_EQ(ActiveKernelIsa(), KernelIsa::kScalar);
  }
  {
    ScopedIsa forced(KernelIsa::kAvx2);
    // Falls back to scalar when the hardware can't run AVX2+FMA.
    const KernelIsa expect = CpuSupportsAvx2Fma() ? KernelIsa::kAvx2
                                                  : KernelIsa::kScalar;
    EXPECT_EQ(forced.installed(), expect);
    EXPECT_EQ(ActiveKernelIsa(), expect);
  }
}

TEST(AlignedAllocatorTest, BuffersAre64ByteAligned) {
  for (size_t n : {1, 7, 100, 4096}) {
    AlignedVector v(n, 1.0);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kKernelAlignment,
              0u);
  }
}

// ---------------------------------------------------------------------
// Parity: every dispatched table vs. an independent sequential oracle,
// on fuzzed mixed-magnitude inputs with denormals, at aligned and
// deliberately misaligned bases, across tail sizes.
// ---------------------------------------------------------------------

class KernelParityTest : public ::testing::TestWithParam<int> {
 protected:
  /// offset 0 = aligned base, 1 = misaligned by one double.
  size_t offset() const { return static_cast<size_t>(GetParam()); }
};

TEST_P(KernelParityTest, Axpy) {
  Rng rng(101 + GetParam());
  for (KernelIsa isa : TestableIsas()) {
    for (size_t n : kSizes) {
      Fuzz f = MakeFuzz(&rng, n + 1, 0, 0, /*specials=*/true);
      const double a = rng.NextDouble(-2.0, 2.0);
      const double* x = f.x.data() + offset();
      std::vector<double> expect(f.y.begin() + offset(),
                                 f.y.begin() + offset() + n);
      for (size_t i = 0; i < n; ++i) expect[i] += a * x[i];
      ScopedIsa forced(isa);
      Axpy(a, x, f.y.data() + offset(), n);
      for (size_t i = 0; i < n; ++i) {
        // Elementwise FMA contraction: at most 1 ULP per element.
        ExpectParity(expect[i], f.y[offset() + i],
                     std::fabs(a * x[i]), 1);
      }
    }
  }
}

TEST_P(KernelParityTest, Dot) {
  Rng rng(202 + GetParam());
  for (KernelIsa isa : TestableIsas()) {
    for (size_t n : kSizes) {
      Fuzz f = MakeFuzz(&rng, n + 1, 0, 0, /*specials=*/true);
      const double* x = f.x.data() + offset();
      const double* y = f.y.data() + offset();
      double expect = 0.0;
      double condition = 0.0;
      for (size_t i = 0; i < n; ++i) {
        expect += x[i] * y[i];
        condition += std::fabs(x[i] * y[i]);
      }
      ScopedIsa forced(isa);
      ExpectParity(expect, Dot(x, y, n), condition, n);
    }
  }
}

TEST_P(KernelParityTest, Scale) {
  Rng rng(303 + GetParam());
  for (KernelIsa isa : TestableIsas()) {
    for (size_t n : kSizes) {
      Fuzz f = MakeFuzz(&rng, n + 1, 0, 0, /*specials=*/true);
      const double a = rng.NextDouble(-3.0, 3.0);
      std::vector<double> expect(f.x.begin() + offset(),
                                 f.x.begin() + offset() + n);
      for (size_t i = 0; i < n; ++i) expect[i] *= a;
      ScopedIsa forced(isa);
      Scale(a, f.x.data() + offset(), n);
      for (size_t i = 0; i < n; ++i) {
        // Pure multiply: bitwise on every path.
        EXPECT_EQ(expect[i], f.x[offset() + i]) << "i=" << i;
      }
    }
  }
}

TEST_P(KernelParityTest, SquaredNorm) {
  Rng rng(404 + GetParam());
  for (KernelIsa isa : TestableIsas()) {
    for (size_t n : kSizes) {
      Fuzz f = MakeFuzz(&rng, n + 1, 0, 0, /*specials=*/true);
      const double* x = f.x.data() + offset();
      double expect = 0.0;
      for (size_t i = 0; i < n; ++i) expect += x[i] * x[i];
      ScopedIsa forced(isa);
      ExpectParity(expect, SquaredNorm(x, n), expect, n);
    }
  }
}

TEST_P(KernelParityTest, SquaredDistance) {
  Rng rng(505 + GetParam());
  for (KernelIsa isa : TestableIsas()) {
    for (size_t n : kSizes) {
      Fuzz f = MakeFuzz(&rng, n + 1, 0, 0, /*specials=*/true);
      const double* x = f.x.data() + offset();
      const double* y = f.y.data() + offset();
      double expect = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double d = x[i] - y[i];
        expect += d * d;
      }
      ScopedIsa forced(isa);
      ExpectParity(expect, SquaredDistance(x, y, n), expect, n);
    }
  }
}

TEST_P(KernelParityTest, GatherDot) {
  Rng rng(606 + GetParam());
  constexpr size_t kDim = 512;
  for (KernelIsa isa : TestableIsas()) {
    for (size_t nnz : kSizes) {
      if (nnz > kDim) continue;
      Fuzz f = MakeFuzz(&rng, 0, kDim + 1, nnz, /*specials=*/false);
      const double* dense = f.x.data() + offset();
      double expect = 0.0;
      double condition = 0.0;
      for (size_t i = 0; i < nnz; ++i) {
        expect += f.val[i] * dense[f.idx[i]];
        condition += std::fabs(f.val[i] * dense[f.idx[i]]);
      }
      ScopedIsa forced(isa);
      ExpectParity(expect, GatherDot(f.idx.data(), f.val.data(), nnz,
                                     dense),
                   condition, nnz);
    }
  }
}

TEST_P(KernelParityTest, GatherAndScatterAxpy) {
  Rng rng(707 + GetParam());
  // MakeFuzz draws indices from [0, kSupport); the oracle arrays below
  // must cover the full support, not support-1.
  constexpr size_t kSupport = 513;
  for (KernelIsa isa : TestableIsas()) {
    for (size_t nnz : kSizes) {
      if (nnz > kSupport) continue;
      Fuzz f = MakeFuzz(&rng, 0, kSupport, nnz, /*specials=*/false);
      const double a = rng.NextDouble(-2.0, 2.0);
      double* dense = f.y.data() + offset();

      std::vector<double> gathered(nnz, -1.0);
      std::vector<double> expect_gather(nnz);
      for (size_t i = 0; i < nnz; ++i) {
        expect_gather[i] = dense[f.idx[i]];
      }
      std::vector<double> expect_dense(dense, dense + kSupport);
      // FMA contraction can differ from mul-then-add by up to 1 ULP of
      // the *product*, which under cancellation exceeds any ULP count
      // of the result — so condition on |a*val| + |addend|.
      std::vector<double> condition(kSupport, 0.0);
      for (size_t i = 0; i < nnz; ++i) {
        const size_t j = static_cast<size_t>(f.idx[i]);
        condition[j] = std::fabs(a * f.val[i]) + std::fabs(dense[j]);
        expect_dense[j] += a * f.val[i];
      }

      ScopedIsa forced(isa);
      Gather(f.idx.data(), nnz, dense, gathered.data());
      for (size_t i = 0; i < nnz; ++i) {
        EXPECT_EQ(gathered[i], expect_gather[i]);  // pure moves
      }
      ScatterAxpy(a, f.idx.data(), f.val.data(), nnz, dense);
      for (size_t j = 0; j < kSupport; ++j) {
        ExpectParity(expect_dense[j], dense[j], condition[j], 1);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AlignedAndMisaligned, KernelParityTest,
                         ::testing::Values(0, 1));

// ---------------------------------------------------------------------
// Special values: NaN/inf propagation must agree across tables.
// ---------------------------------------------------------------------

TEST(KernelSpecialsTest, NanPropagatesThroughReductions) {
  for (KernelIsa isa : TestableIsas()) {
    ScopedIsa forced(isa);
    for (size_t pos : {size_t{0}, size_t{7}, size_t{20}}) {
      std::vector<double> x(21, 1.0);
      std::vector<double> y(21, 2.0);
      x[pos] = kNan;
      EXPECT_TRUE(std::isnan(Dot(x.data(), y.data(), x.size())));
      EXPECT_TRUE(std::isnan(SquaredNorm(x.data(), x.size())));
      EXPECT_TRUE(
          std::isnan(SquaredDistance(x.data(), y.data(), x.size())));
    }
  }
}

TEST(KernelSpecialsTest, InfinityProducesInfinity) {
  for (KernelIsa isa : TestableIsas()) {
    ScopedIsa forced(isa);
    std::vector<double> x(33, 1.0);
    std::vector<double> y(33, 1.0);
    x[13] = kInf;
    EXPECT_EQ(Dot(x.data(), y.data(), x.size()), kInf);
    EXPECT_EQ(SquaredNorm(x.data(), x.size()), kInf);
  }
}

TEST(KernelSpecialsTest, EmptyInputsAreNoOps) {
  for (KernelIsa isa : TestableIsas()) {
    ScopedIsa forced(isa);
    EXPECT_EQ(Dot(nullptr, nullptr, 0), 0.0);
    EXPECT_EQ(SquaredNorm(nullptr, 0), 0.0);
    EXPECT_EQ(SquaredDistance(nullptr, nullptr, 0), 0.0);
    EXPECT_EQ(GatherDot(nullptr, nullptr, 0, nullptr), 0.0);
    Axpy(2.0, nullptr, nullptr, 0);
    Scale(2.0, nullptr, 0);
    Gather(nullptr, 0, nullptr, nullptr);
    ScatterAxpy(2.0, nullptr, nullptr, 0, nullptr);  // must not crash
  }
}

// ---------------------------------------------------------------------
// Cross-table agreement on a large mixed workload: whatever table cpuid
// picked must agree with scalar within the reduction tolerance.
// ---------------------------------------------------------------------

TEST(KernelCrossIsaTest, DispatchedMatchesScalarOnLargeInputs) {
  if (!CpuSupportsAvx2Fma()) {
    GTEST_SKIP() << "no AVX2+FMA on this host";
  }
  Rng rng(33550336);
  constexpr size_t kN = 10000;
  Fuzz f = MakeFuzz(&rng, kN, 0, 0, /*specials=*/true);

  double scalar_dot;
  double scalar_norm;
  {
    ScopedIsa forced(KernelIsa::kScalar);
    scalar_dot = Dot(f.x.data(), f.y.data(), kN);
    scalar_norm = SquaredNorm(f.x.data(), kN);
  }
  double condition = 0.0;
  for (size_t i = 0; i < kN; ++i) {
    condition += std::fabs(f.x[i] * f.y[i]);
  }
  {
    ScopedIsa forced(KernelIsa::kAvx2);
    ExpectParity(scalar_dot, Dot(f.x.data(), f.y.data(), kN), condition,
                 kN);
    ExpectParity(scalar_norm, SquaredNorm(f.x.data(), kN), scalar_norm,
                 kN);
  }
}

}  // namespace
}  // namespace kernels
}  // namespace hetps
