#include "core/sgd_compute.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"

namespace hetps {
namespace {

Dataset SmallSet() {
  SyntheticConfig cfg;
  cfg.num_examples = 60;
  cfg.num_features = 40;
  cfg.avg_nnz = 6;
  cfg.label_noise = 0.0;
  cfg.seed = 9;
  return GenerateSynthetic(cfg);
}

DataShard FullShard(const Dataset& d) {
  DataShard shard;
  for (size_t i = 0; i < d.size(); ++i) shard.example_indices.push_back(i);
  return shard;
}

TEST(LocalWorkerSgdTest, RunClockScansWholeShardOnce) {
  Dataset d = SmallSet();
  LogisticLoss loss;
  FixedRate rate(0.1);
  LocalWorkerSgd::Options opts;
  opts.batch_size = 16;
  LocalWorkerSgd sgd(&d, FullShard(d), &loss, &rate, opts);
  std::vector<double> replica(static_cast<size_t>(d.dimension()), 0.0);
  SparseVector update;
  const auto stats = sgd.RunClock(0, &replica, &update);
  EXPECT_EQ(stats.examples_processed, d.size());
  EXPECT_EQ(stats.batches, (d.size() + 15) / 16);
  EXPECT_GT(stats.nnz_processed, 0u);
  EXPECT_GT(stats.mean_loss, 0.0);
}

TEST(LocalWorkerSgdTest, UpdateEqualsReplicaDisplacement) {
  // Algorithm 1 lines 5-6: the pushed update is exactly the replica's
  // total movement during the clock.
  Dataset d = SmallSet();
  LogisticLoss loss;
  FixedRate rate(0.2);
  LocalWorkerSgd::Options opts;
  opts.batch_size = 8;
  LocalWorkerSgd sgd(&d, FullShard(d), &loss, &rate, opts);
  std::vector<double> replica(static_cast<size_t>(d.dimension()), 0.0);
  const std::vector<double> before = replica;
  SparseVector update;
  sgd.RunClock(0, &replica, &update);
  for (int64_t j = 0; j < d.dimension(); ++j) {
    EXPECT_NEAR(replica[static_cast<size_t>(j)] -
                    before[static_cast<size_t>(j)],
                update.ValueAt(j), 1e-12);
  }
}

TEST(LocalWorkerSgdTest, ObjectiveDecreasesOverClocks) {
  Dataset d = SmallSet();
  LogisticLoss loss;
  FixedRate rate(0.5);
  LocalWorkerSgd::Options opts;
  opts.batch_size = 10;
  opts.l2 = 1e-4;
  LocalWorkerSgd sgd(&d, FullShard(d), &loss, &rate, opts);
  std::vector<double> replica(static_cast<size_t>(d.dimension()), 0.0);
  const double initial = d.Objective(loss, replica, opts.l2);
  SparseVector update;
  for (int c = 0; c < 10; ++c) sgd.RunClock(c, &replica, &update);
  EXPECT_LT(d.Objective(loss, replica, opts.l2), 0.5 * initial);
}

TEST(LocalWorkerSgdTest, UsesScheduleRate) {
  Dataset d = SmallSet();
  LogisticLoss loss;
  // A rate so tiny the update must be tiny too.
  FixedRate rate(1e-9);
  LocalWorkerSgd::Options opts;
  opts.batch_size = 10;
  LocalWorkerSgd sgd(&d, FullShard(d), &loss, &rate, opts);
  std::vector<double> replica(static_cast<size_t>(d.dimension()), 0.0);
  SparseVector update;
  sgd.RunClock(0, &replica, &update);
  EXPECT_LT(std::sqrt(update.SquaredNorm()), 1e-6);
}

TEST(LocalWorkerSgdTest, EmptyShardYieldsEmptyUpdate) {
  Dataset d = SmallSet();
  LogisticLoss loss;
  FixedRate rate(0.1);
  LocalWorkerSgd sgd(&d, DataShard{}, &loss, &rate, {});
  std::vector<double> replica(static_cast<size_t>(d.dimension()), 0.0);
  SparseVector update;
  const auto stats = sgd.RunClock(0, &replica, &update);
  EXPECT_EQ(stats.examples_processed, 0u);
  EXPECT_TRUE(update.empty());
}

TEST(LocalWorkerSgdTest, ShardNnzSumsFeatureCounts) {
  Dataset d = SmallSet();
  LogisticLoss loss;
  FixedRate rate(0.1);
  LocalWorkerSgd sgd(&d, FullShard(d), &loss, &rate, {});
  size_t expected = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    expected += d.example(i).features.nnz();
  }
  EXPECT_EQ(sgd.ShardNnz(), expected);
}

TEST(BatchSizeForFractionTest, TenPercentRule) {
  EXPECT_EQ(LocalWorkerSgd::BatchSizeForFraction(100, 0.1), 10u);
  EXPECT_EQ(LocalWorkerSgd::BatchSizeForFraction(5, 0.1), 1u);
  EXPECT_EQ(LocalWorkerSgd::BatchSizeForFraction(100, 1.0), 100u);
}

TEST(BatchSizeForFractionDeathTest, RejectsBadFraction) {
  EXPECT_DEATH(LocalWorkerSgd::BatchSizeForFraction(10, 0.0),
               "fraction");
  EXPECT_DEATH(LocalWorkerSgd::BatchSizeForFraction(10, 1.5),
               "fraction");
}

}  // namespace
}  // namespace hetps
