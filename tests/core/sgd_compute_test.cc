#include "core/sgd_compute.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/synthetic.h"
#include "math/kernels.h"
#include "obs/metrics.h"

namespace hetps {
namespace {

Dataset SmallSet() {
  SyntheticConfig cfg;
  cfg.num_examples = 60;
  cfg.num_features = 40;
  cfg.avg_nnz = 6;
  cfg.label_noise = 0.0;
  cfg.seed = 9;
  return GenerateSynthetic(cfg);
}

DataShard FullShard(const Dataset& d) {
  DataShard shard;
  for (size_t i = 0; i < d.size(); ++i) shard.example_indices.push_back(i);
  return shard;
}

TEST(LocalWorkerSgdTest, RunClockScansWholeShardOnce) {
  Dataset d = SmallSet();
  LogisticLoss loss;
  FixedRate rate(0.1);
  LocalWorkerSgd::Options opts;
  opts.batch_size = 16;
  LocalWorkerSgd sgd(&d, FullShard(d), &loss, &rate, opts);
  std::vector<double> replica(static_cast<size_t>(d.dimension()), 0.0);
  SparseVector update;
  const auto stats = sgd.RunClock(0, &replica, &update);
  EXPECT_EQ(stats.examples_processed, d.size());
  EXPECT_EQ(stats.batches, (d.size() + 15) / 16);
  EXPECT_GT(stats.nnz_processed, 0u);
  EXPECT_GT(stats.mean_loss, 0.0);
}

TEST(LocalWorkerSgdTest, UpdateEqualsReplicaDisplacement) {
  // Algorithm 1 lines 5-6: the pushed update is exactly the replica's
  // total movement during the clock.
  Dataset d = SmallSet();
  LogisticLoss loss;
  FixedRate rate(0.2);
  LocalWorkerSgd::Options opts;
  opts.batch_size = 8;
  LocalWorkerSgd sgd(&d, FullShard(d), &loss, &rate, opts);
  std::vector<double> replica(static_cast<size_t>(d.dimension()), 0.0);
  const std::vector<double> before = replica;
  SparseVector update;
  sgd.RunClock(0, &replica, &update);
  for (int64_t j = 0; j < d.dimension(); ++j) {
    EXPECT_NEAR(replica[static_cast<size_t>(j)] -
                    before[static_cast<size_t>(j)],
                update.ValueAt(j), 1e-12);
  }
}

TEST(LocalWorkerSgdTest, ObjectiveDecreasesOverClocks) {
  Dataset d = SmallSet();
  LogisticLoss loss;
  FixedRate rate(0.5);
  LocalWorkerSgd::Options opts;
  opts.batch_size = 10;
  opts.l2 = 1e-4;
  LocalWorkerSgd sgd(&d, FullShard(d), &loss, &rate, opts);
  std::vector<double> replica(static_cast<size_t>(d.dimension()), 0.0);
  const double initial = d.Objective(loss, replica, opts.l2);
  SparseVector update;
  for (int c = 0; c < 10; ++c) sgd.RunClock(c, &replica, &update);
  EXPECT_LT(d.Objective(loss, replica, opts.l2), 0.5 * initial);
}

TEST(LocalWorkerSgdTest, UsesScheduleRate) {
  Dataset d = SmallSet();
  LogisticLoss loss;
  // A rate so tiny the update must be tiny too.
  FixedRate rate(1e-9);
  LocalWorkerSgd::Options opts;
  opts.batch_size = 10;
  LocalWorkerSgd sgd(&d, FullShard(d), &loss, &rate, opts);
  std::vector<double> replica(static_cast<size_t>(d.dimension()), 0.0);
  SparseVector update;
  sgd.RunClock(0, &replica, &update);
  EXPECT_LT(std::sqrt(update.SquaredNorm()), 1e-6);
}

TEST(LocalWorkerSgdTest, EmptyShardYieldsEmptyUpdate) {
  Dataset d = SmallSet();
  LogisticLoss loss;
  FixedRate rate(0.1);
  LocalWorkerSgd sgd(&d, DataShard{}, &loss, &rate, {});
  std::vector<double> replica(static_cast<size_t>(d.dimension()), 0.0);
  SparseVector update;
  const auto stats = sgd.RunClock(0, &replica, &update);
  EXPECT_EQ(stats.examples_processed, 0u);
  EXPECT_TRUE(update.empty());
}

TEST(LocalWorkerSgdTest, ShardNnzSumsFeatureCounts) {
  Dataset d = SmallSet();
  LogisticLoss loss;
  FixedRate rate(0.1);
  LocalWorkerSgd sgd(&d, FullShard(d), &loss, &rate, {});
  size_t expected = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    expected += d.example(i).features.nnz();
  }
  EXPECT_EQ(sgd.ShardNnz(), expected);
}

/// Line-for-line reimplementation of the pre-kernel RunClock (three
/// passes over each batch, dense O(dim) gradient/update fills, FromDense
/// emission). The touched-list rewrite promises the same per-coordinate
/// floating-point op sequence, so under a scalar-forced dispatch table
/// the two must agree *bitwise*; under AVX2 dispatch only the gather-dot
/// margins reassociate, so agreement is within 1e-9.
struct LegacyReferenceSgd {
  const Dataset* dataset;
  DataShard shard;
  const LossFunction* loss;
  const LearningRateSchedule* schedule;
  LocalWorkerSgd::Options options;
  std::vector<double> update_buffer;
  std::vector<double> batch_grad;

  LegacyReferenceSgd(const Dataset* d, DataShard s, const LossFunction* l,
                     const LearningRateSchedule* sch,
                     LocalWorkerSgd::Options o)
      : dataset(d), shard(std::move(s)), loss(l), schedule(sch),
        options(o) {
    const size_t dim = static_cast<size_t>(d->dimension());
    update_buffer.assign(dim, 0.0);
    batch_grad.assign(dim, 0.0);
  }

  void RunClock(int clock, std::vector<double>* replica,
                SparseVector* update) {
    const double eta = schedule->Rate(clock);
    std::fill(update_buffer.begin(), update_buffer.end(), 0.0);
    const auto& indices = shard.example_indices;
    size_t pos = 0;
    while (pos < indices.size()) {
      const size_t batch_end =
          std::min(pos + options.batch_size, indices.size());
      const size_t b = batch_end - pos;
      std::fill(batch_grad.begin(), batch_grad.end(), 0.0);
      const double inv_b = 1.0 / static_cast<double>(b);
      for (size_t k = pos; k < batch_end; ++k) {
        const Example& ex = dataset->example(indices[k]);
        AccumulateExampleGradient(*loss, ex.features, ex.label, *replica,
                                  inv_b, &batch_grad);
      }
      for (size_t k = pos; k < batch_end; ++k) {
        const Example& ex = dataset->example(indices[k]);
        for (size_t i = 0; i < ex.features.nnz(); ++i) {
          const size_t j = static_cast<size_t>(ex.features.index(i));
          batch_grad[j] += options.l2 * (*replica)[j] * inv_b;
        }
      }
      for (size_t k = pos; k < batch_end; ++k) {
        const Example& ex = dataset->example(indices[k]);
        for (size_t i = 0; i < ex.features.nnz(); ++i) {
          const size_t j = static_cast<size_t>(ex.features.index(i));
          const double g = batch_grad[j];
          if (g != 0.0) {
            (*replica)[j] -= eta * g;
            update_buffer[j] -= eta * g;
            batch_grad[j] = 0.0;
          }
        }
      }
      pos = batch_end;
    }
    *update = SparseVector::FromDense(update_buffer, 0.0);
  }
};

TEST(LocalWorkerSgdTest, MatchesLegacyReferenceBitwiseUnderScalar) {
  Dataset d = SmallSet();
  LogisticLoss loss;
  FixedRate rate(0.3);
  LocalWorkerSgd::Options opts;
  opts.batch_size = 7;  // uneven final batch
  opts.l2 = 1e-3;
  const kernels::KernelIsa installed =
      kernels::SetKernelIsaForTesting(kernels::KernelIsa::kScalar);
  ASSERT_EQ(installed, kernels::KernelIsa::kScalar);
  const size_t dim = static_cast<size_t>(d.dimension());
  std::vector<double> replica_a(dim, 0.0);
  std::vector<double> replica_b(dim, 0.0);
  LegacyReferenceSgd legacy(&d, FullShard(d), &loss, &rate, opts);
  LocalWorkerSgd rewritten(&d, FullShard(d), &loss, &rate, opts);
  for (int c = 0; c < 4; ++c) {
    SparseVector ua;
    SparseVector ub;
    legacy.RunClock(c, &replica_a, &ua);
    rewritten.RunClock(c, &replica_b, &ub);
    ASSERT_EQ(ua.nnz(), ub.nnz()) << "clock " << c;
    for (size_t i = 0; i < ua.nnz(); ++i) {
      EXPECT_EQ(ua.index(i), ub.index(i)) << "clock " << c;
      EXPECT_EQ(ua.value(i), ub.value(i))
          << "clock " << c << " coord " << ua.index(i);
    }
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_EQ(replica_a[j], replica_b[j])
          << "clock " << c << " coord " << j;
    }
  }
  kernels::ResetKernelIsaForTesting();
}

TEST(LocalWorkerSgdTest, MatchesLegacyReferenceUnderDispatchedIsa) {
  // Whatever table cpuid picked: the only reassociated quantity is the
  // per-example gather-dot margin, so trajectories agree to ~1e-9 over
  // a few clocks on a small problem.
  Dataset d = SmallSet();
  LogisticLoss loss;
  FixedRate rate(0.3);
  LocalWorkerSgd::Options opts;
  opts.batch_size = 7;
  opts.l2 = 1e-3;
  const size_t dim = static_cast<size_t>(d.dimension());
  std::vector<double> replica_a(dim, 0.0);
  std::vector<double> replica_b(dim, 0.0);
  LegacyReferenceSgd legacy(&d, FullShard(d), &loss, &rate, opts);
  LocalWorkerSgd rewritten(&d, FullShard(d), &loss, &rate, opts);
  for (int c = 0; c < 4; ++c) {
    SparseVector ua;
    SparseVector ub;
    legacy.RunClock(c, &replica_a, &ua);
    rewritten.RunClock(c, &replica_b, &ub);
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_NEAR(replica_a[j], replica_b[j], 1e-9)
          << "clock " << c << " coord " << j;
    }
  }
}

TEST(LocalWorkerSgdTest, ScratchWorkIsIndependentOfModelDimension) {
  // The PR-4 bugfix: per-clock dense-buffer writes must scale with the
  // shard's touched coordinates, not the model dimension. Run the same
  // examples embedded in models 16x apart in dimension and require
  // identical reset-write counts (the pre-rewrite trainer paid
  // O(dim) fills per batch, so its counts would differ by ~16x).
  SyntheticConfig small_cfg;
  small_cfg.num_examples = 40;
  small_cfg.num_features = 1 << 10;
  small_cfg.avg_nnz = 8;
  small_cfg.seed = 11;
  small_cfg.margin_gap = 0.0;
  Dataset small = GenerateSynthetic(small_cfg);
  // Same examples, much bigger model: re-declare the dimension.
  std::vector<Example> copies;
  for (size_t i = 0; i < small.size(); ++i) {
    copies.push_back(small.example(i));
  }
  Dataset big(std::move(copies), 1 << 14);

  LogisticLoss loss;
  FixedRate rate(0.2);
  LocalWorkerSgd::Options opts;
  opts.batch_size = 8;
  size_t resets[2];
  size_t touched[2];
  const Dataset* sets[2] = {&small, &big};
  for (int s = 0; s < 2; ++s) {
    const Dataset& d = *sets[s];
    LocalWorkerSgd sgd(&d, FullShard(d), &loss, &rate, opts);
    std::vector<double> replica(static_cast<size_t>(d.dimension()), 0.0);
    SparseVector update;
    const auto stats = sgd.RunClock(0, &replica, &update);
    resets[s] = stats.buffer_reset_writes;
    touched[s] = stats.coords_touched;
    // Never more than two writes per processed nnz (one per batch
    // touch, one per clock touch).
    EXPECT_LE(stats.buffer_reset_writes, 2 * stats.nnz_processed);
  }
  EXPECT_EQ(resets[0], resets[1]);
  EXPECT_EQ(touched[0], touched[1]);
}

TEST(LocalWorkerSgdTest, ReportsKernelIsaAndStageHistograms) {
  Dataset d = SmallSet();
  LogisticLoss loss;
  FixedRate rate(0.1);
  LocalWorkerSgd sgd(&d, FullShard(d), &loss, &rate, {});
  // Constructor publishes the resolved dispatch table as an info gauge.
  Gauge* isa_gauge = GlobalMetrics().gauge(
      "compute.kernel_isa",
      {{"isa", kernels::KernelIsaName(kernels::ActiveKernelIsa())}});
  EXPECT_TRUE(isa_gauge->has_value());
  EXPECT_EQ(isa_gauge->value(), 1.0);

  BucketedHistogram* gather = GlobalMetrics().histogram("compute.gather_us");
  BucketedHistogram* scatter =
      GlobalMetrics().histogram("compute.scatter_us");
  const int64_t gather_before = gather->count();
  const int64_t scatter_before = scatter->count();
  std::vector<double> replica(static_cast<size_t>(d.dimension()), 0.0);
  SparseVector update;
  const auto stats = sgd.RunClock(0, &replica, &update);
  EXPECT_EQ(gather->count() - gather_before,
            static_cast<int64_t>(stats.batches));
  EXPECT_EQ(scatter->count() - scatter_before,
            static_cast<int64_t>(stats.batches));
}

TEST(BatchSizeForFractionTest, TenPercentRule) {
  EXPECT_EQ(LocalWorkerSgd::BatchSizeForFraction(100, 0.1), 10u);
  EXPECT_EQ(LocalWorkerSgd::BatchSizeForFraction(5, 0.1), 1u);
  EXPECT_EQ(LocalWorkerSgd::BatchSizeForFraction(100, 1.0), 100u);
}

TEST(BatchSizeForFractionDeathTest, RejectsBadFraction) {
  EXPECT_DEATH(LocalWorkerSgd::BatchSizeForFraction(10, 0.0),
               "fraction");
  EXPECT_DEATH(LocalWorkerSgd::BatchSizeForFraction(10, 1.5),
               "fraction");
}

}  // namespace
}  // namespace hetps
