#include "core/param_block.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

TEST(ParamBlockTest, DenseByDefaultAndZeroed) {
  ParamBlock b(4);
  EXPECT_FALSE(b.is_sparse());
  EXPECT_EQ(b.dim(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(b.At(i), 0.0);
}

TEST(ParamBlockTest, AddSparseIntoDense) {
  ParamBlock b(5);
  SparseVector u({1, 4}, {2.0, -1.0});
  b.Add(u, 0.5);
  EXPECT_DOUBLE_EQ(b.At(1), 1.0);
  EXPECT_DOUBLE_EQ(b.At(4), -0.5);
  EXPECT_DOUBLE_EQ(b.At(0), 0.0);
}

TEST(ParamBlockTest, AddSparseIntoSparseLayout) {
  ParamBlock b(5, ParamBlock::Layout::kSparse);
  EXPECT_TRUE(b.is_sparse());
  SparseVector u({0, 2}, {1.0, 3.0});
  b.Add(u);
  b.Add(u);
  EXPECT_DOUBLE_EQ(b.At(0), 2.0);
  EXPECT_DOUBLE_EQ(b.At(2), 6.0);
  EXPECT_EQ(b.CountNonZero(), 2u);
}

TEST(ParamBlockDeathTest, AddRangeChecked) {
  ParamBlock b(2);
  SparseVector u({5}, {1.0});
  EXPECT_DEATH(b.Add(u), "out of block range");
}

TEST(ParamBlockTest, AddBlockMixedLayouts) {
  ParamBlock dense(3);
  dense.Set(0, 1.0);
  ParamBlock sparse(3, ParamBlock::Layout::kSparse);
  sparse.Set(2, 4.0);
  dense.AddBlock(sparse, 0.5);
  EXPECT_DOUBLE_EQ(dense.At(2), 2.0);
  sparse.AddBlock(dense, 1.0);
  EXPECT_DOUBLE_EQ(sparse.At(0), 1.0);
  EXPECT_DOUBLE_EQ(sparse.At(2), 6.0);
}

TEST(ParamBlockTest, AddDenseVector) {
  ParamBlock b(3, ParamBlock::Layout::kSparse);
  b.AddDense({1.0, 0.0, -2.0}, 2.0);
  EXPECT_DOUBLE_EQ(b.At(0), 2.0);
  EXPECT_DOUBLE_EQ(b.At(2), -4.0);
  // Zero entries are not materialized in sparse layout.
  EXPECT_EQ(b.CountNonZero(), 2u);
}

TEST(ParamBlockTest, ScaleBothLayouts) {
  for (auto layout :
       {ParamBlock::Layout::kDense, ParamBlock::Layout::kSparse}) {
    ParamBlock b(2, layout);
    b.Set(1, 3.0);
    b.Scale(-2.0);
    EXPECT_DOUBLE_EQ(b.At(1), -6.0);
  }
}

TEST(ParamBlockTest, SetAndClear) {
  ParamBlock b(3, ParamBlock::Layout::kSparse);
  b.Set(1, 5.0);
  EXPECT_DOUBLE_EQ(b.At(1), 5.0);
  b.Set(1, 0.0);  // setting zero erases the sparse entry
  EXPECT_EQ(b.CountNonZero(), 0u);
  b.Set(2, 1.0);
  b.Clear();
  EXPECT_DOUBLE_EQ(b.At(2), 0.0);
}

TEST(ParamBlockTest, CompactLayoutFollowsFiftyPercentRule) {
  ParamBlock b(10);  // dense
  b.Set(0, 1.0);     // 10% non-zero -> sparse preferred
  EXPECT_TRUE(b.CompactLayout());
  EXPECT_TRUE(b.is_sparse());
  // Fill to 60% -> dense preferred.
  for (size_t i = 0; i < 6; ++i) b.Set(i, 1.0);
  EXPECT_TRUE(b.CompactLayout());
  EXPECT_FALSE(b.is_sparse());
  // Stable if already optimal.
  EXPECT_FALSE(b.CompactLayout());
}

TEST(ParamBlockTest, CompactPreservesValues) {
  ParamBlock b(8);
  b.Set(3, 2.5);
  b.Set(7, -1.5);
  b.CompactLayout();
  EXPECT_DOUBLE_EQ(b.At(3), 2.5);
  EXPECT_DOUBLE_EQ(b.At(7), -1.5);
  EXPECT_DOUBLE_EQ(b.At(0), 0.0);
}

TEST(ParamBlockTest, SparseLayoutUsesLessMemoryWhenSparse) {
  ParamBlock dense(1000);
  dense.Set(1, 1.0);
  const size_t dense_bytes = dense.MemoryBytes();
  dense.CompactLayout();
  EXPECT_LT(dense.MemoryBytes(), dense_bytes);
}

TEST(ParamBlockTest, DropSmallEntries) {
  ParamBlock b(4, ParamBlock::Layout::kSparse);
  b.Set(0, 1e-9);
  b.Set(1, 0.5);
  EXPECT_EQ(b.DropSmallEntries(1e-6), 1u);
  EXPECT_EQ(b.CountNonZero(), 1u);
  ParamBlock d(4);
  d.Set(0, 1e-9);
  d.Set(1, 0.5);
  EXPECT_EQ(d.DropSmallEntries(1e-6), 1u);
  EXPECT_DOUBLE_EQ(d.At(0), 0.0);
}

TEST(ParamBlockTest, ToDenseAndToSparseRoundTrip) {
  ParamBlock b(6, ParamBlock::Layout::kSparse);
  b.Set(2, 1.0);
  b.Set(5, -2.0);
  const std::vector<double> dense = b.ToDense();
  EXPECT_DOUBLE_EQ(dense[2], 1.0);
  EXPECT_DOUBLE_EQ(dense[5], -2.0);
  const SparseVector sv = b.ToSparse();
  ASSERT_EQ(sv.nnz(), 2u);
  EXPECT_EQ(sv.index(0), 2);  // sorted
  EXPECT_EQ(sv.index(1), 5);
}

TEST(ParamBlockTest, AddToAccumulates) {
  ParamBlock b(3);
  b.Set(0, 2.0);
  std::vector<double> out = {1.0, 1.0, 1.0};
  b.AddTo(&out, 3.0);
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
}

TEST(ParamBlockTest, SquaredNorm) {
  ParamBlock b(3, ParamBlock::Layout::kSparse);
  b.Set(0, 3.0);
  b.Set(2, 4.0);
  EXPECT_DOUBLE_EQ(b.SquaredNorm(), 25.0);
}

}  // namespace
}  // namespace hetps
