#include "core/consolidation.h"

#include <gtest/gtest.h>

#include "core/dyn_sgd.h"

namespace hetps {
namespace {

SparseVector U(std::vector<int64_t> idx, std::vector<double> val) {
  return SparseVector(std::move(idx), std::move(val));
}

TEST(SspRuleTest, AccumulatesAtFullWeight) {
  SspRule rule;
  rule.Reset(4, 3);
  ParamBlock w(4);
  rule.OnPush(0, 0, U({0}, {1.0}), &w);
  rule.OnPush(1, 0, U({0}, {2.0}), &w);
  EXPECT_DOUBLE_EQ(w.At(0), 3.0);
  EXPECT_EQ(rule.AuxMemoryBytes(), 0u);
  EXPECT_DOUBLE_EQ(rule.ObservedMeanStaleness(), 1.0);
}

TEST(SspRuleTest, MaterializeReturnsParameter) {
  SspRule rule;
  rule.Reset(2, 1);
  ParamBlock w(2);
  rule.OnPush(0, 0, U({1}, {5.0}), &w);
  const auto dense = rule.Materialize(w);
  EXPECT_DOUBLE_EQ(dense[1], 5.0);
}

TEST(ConRuleTest, HeuristicUsesInverseM) {
  ConRule rule;
  rule.Reset(4, 10);
  EXPECT_DOUBLE_EQ(rule.lambda_g(), 0.1);
  ParamBlock w(4);
  rule.OnPush(0, 0, U({0}, {5.0}), &w);
  EXPECT_DOUBLE_EQ(w.At(0), 0.5);
}

TEST(ConRuleTest, ExplicitLambdaOverridesHeuristic) {
  ConRule rule(0.25);
  rule.Reset(4, 10);
  EXPECT_DOUBLE_EQ(rule.lambda_g(), 0.25);
  ParamBlock w(4);
  rule.OnPush(0, 0, U({0}, {4.0}), &w);
  EXPECT_DOUBLE_EQ(w.At(0), 1.0);
}

TEST(ConRuleTest, BspEquivalenceToModelAveraging) {
  // With λg = 1/M, accumulating all M updates equals the BSP average
  // w + (1/M) Σ u_i (§4 "Hyperparameter-free Heuristic").
  const int m = 4;
  ConRule rule;
  rule.Reset(1, m);
  ParamBlock w(1);
  double sum = 0.0;
  for (int i = 0; i < m; ++i) {
    const double u = 1.0 + i;
    rule.OnPush(i, 0, U({0}, {u}), &w);
    sum += u;
  }
  EXPECT_NEAR(w.At(0), sum / m, 1e-12);
}

TEST(ConRuleDeathTest, RejectsBadLambda) {
  EXPECT_DEATH(ConRule(0.0), "lambda_g");
  EXPECT_DEATH(ConRule(1.5), "lambda_g");
}

TEST(ConRuleTest, CloneKeepsConfiguration) {
  ConRule rule(0.2);
  auto clone = rule.Clone();
  clone->Reset(2, 30);
  ParamBlock w(2);
  clone->OnPush(0, 0, U({0}, {10.0}), &w);
  EXPECT_DOUBLE_EQ(w.At(0), 2.0);  // still 0.2, not 1/30
}

TEST(MakeConsolidationRuleTest, FactoryByName) {
  EXPECT_EQ(MakeConsolidationRule("ssp")->name(), "SspSGD");
  EXPECT_EQ(MakeConsolidationRule("con")->name(), "ConSGD");
  EXPECT_EQ(MakeConsolidationRule("dyn")->name(), "DynSGD");
}

TEST(MakeConsolidationRuleDeathTest, RejectsUnknown) {
  EXPECT_DEATH(MakeConsolidationRule("bogus"), "unknown consolidation");
}

TEST(RuleCloneTest, ClonesAreIndependent) {
  SspRule proto;
  auto a = proto.Clone();
  auto b = proto.Clone();
  a->Reset(2, 1);
  b->Reset(2, 1);
  ParamBlock wa(2);
  ParamBlock wb(2);
  a->OnPush(0, 0, U({0}, {1.0}), &wa);
  EXPECT_DOUBLE_EQ(wb.At(0), 0.0);
}

}  // namespace
}  // namespace hetps
