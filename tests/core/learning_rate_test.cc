#include "core/learning_rate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hetps {
namespace {

TEST(FixedRateTest, ConstantAcrossClocks) {
  FixedRate r(0.3);
  EXPECT_DOUBLE_EQ(r.Rate(0), 0.3);
  EXPECT_DOUBLE_EQ(r.Rate(100), 0.3);
  EXPECT_DOUBLE_EQ(r.sigma(), 0.3);
}

TEST(DecayedRateTest, MatchesPaperFormula) {
  // η_c = σ / sqrt(α c + 1) with α = 0.2 (§7.1).
  DecayedRate r(1.0, 0.2);
  EXPECT_DOUBLE_EQ(r.Rate(0), 1.0);
  EXPECT_DOUBLE_EQ(r.Rate(5), 1.0 / std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(r.Rate(20), 1.0 / std::sqrt(5.0));
}

TEST(DecayedRateTest, MonotoneNonIncreasing) {
  DecayedRate r(0.5, 0.2);
  double prev = r.Rate(0);
  for (int c = 1; c < 50; ++c) {
    const double cur = r.Rate(c);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(DecayedRateTest, ZeroAlphaIsConstant) {
  DecayedRate r(0.5, 0.0);
  EXPECT_DOUBLE_EQ(r.Rate(0), r.Rate(99));
}

TEST(InverseSqrtRateTest, MatchesTheoremSchedule) {
  InverseSqrtRate r(2.0);
  EXPECT_DOUBLE_EQ(r.Rate(0), 2.0);
  EXPECT_DOUBLE_EQ(r.Rate(3), 1.0);
}

TEST(LearningRateTest, CloneIsEquivalent) {
  DecayedRate r(0.7, 0.2);
  auto clone = r.Clone();
  for (int c : {0, 3, 17}) {
    EXPECT_DOUBLE_EQ(clone->Rate(c), r.Rate(c));
  }
}

TEST(LearningRateTest, DebugStringsNameSchedules) {
  EXPECT_NE(FixedRate(0.1).DebugString().find("fixed"),
            std::string::npos);
  EXPECT_NE(DecayedRate(0.1).DebugString().find("decayed"),
            std::string::npos);
  EXPECT_NE(InverseSqrtRate(0.1).DebugString().find("inv_sqrt"),
            std::string::npos);
}

TEST(LearningRateDeathTest, RejectsNonPositiveSigma) {
  EXPECT_DEATH(FixedRate(0.0), "positive");
  EXPECT_DEATH(DecayedRate(-1.0), "positive");
  EXPECT_DEATH(InverseSqrtRate(0.0), "positive");
}

}  // namespace
}  // namespace hetps
