#include "core/regret_bounds.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hetps {
namespace {

BoundParams Params(double t = 1000.0) {
  BoundParams p;
  p.F = 1.5;
  p.L = 2.0;
  p.s = 3;
  p.M = 30;
  p.T = t;
  return p;
}

TEST(RegretBoundsTest, ClosedFormsMatchFormulas) {
  const BoundParams p = Params();
  const double common =
      p.F * p.L * std::sqrt(2.0 * (p.s + 1) * p.M / p.T);
  EXPECT_DOUBLE_EQ(SspRegretBound(p), 4.0 * common);            // Eq. (2)
  EXPECT_DOUBLE_EQ(ConRegretBound(p), (p.M + 3.0) * common);    // Eq. (3)
  EXPECT_DOUBLE_EQ(ConRegretBoundTuned(p), 3.0 * common);       // Eq. (4)
  EXPECT_DOUBLE_EQ(DynRegretBound(p, 10.0), 13.0 * common);     // Eq. (5)
}

TEST(RegretBoundsTest, TunedConBeatsUntunedCon) {
  const BoundParams p = Params();
  EXPECT_LT(ConRegretBoundTuned(p), ConRegretBound(p));
}

TEST(RegretBoundsTest, DynInterpolatesWithMu) {
  // (μ+3) factor: better than Eq. (3)'s (M+3) whenever μ < M (§5.2).
  const BoundParams p = Params();
  EXPECT_LT(DynRegretBound(p, 1.0), ConRegretBound(p));
  EXPECT_DOUBLE_EQ(DynRegretBound(p, static_cast<double>(p.M)),
                   ConRegretBound(p));
}

TEST(RegretBoundsTest, BoundsVanishAsTGrows) {
  const double early = SspRegretBound(Params(100.0));
  const double late = SspRegretBound(Params(1e10));
  EXPECT_GT(early, late);
  EXPECT_LT(late, 1e-2);
  // O(1/sqrt(T)): quadrupling T halves the bound.
  EXPECT_NEAR(SspRegretBound(Params(400.0)),
              0.5 * SspRegretBound(Params(100.0)), 1e-12);
}

TEST(RegretBoundsTest, BoundsGrowWithStalenessAndWorkers) {
  BoundParams p = Params();
  const double base = SspRegretBound(p);
  p.s = 10;
  EXPECT_GT(SspRegretBound(p), base);
  p = Params();
  p.M = 100;
  EXPECT_GT(SspRegretBound(p), base);
}

TEST(RegretBoundsDeathTest, ValidatesMu) {
  const BoundParams p = Params();
  EXPECT_DEATH(DynRegretBound(p, 0.5), "staleness");
  EXPECT_DEATH(DynRegretBound(p, p.M + 1.0), "staleness");
}

TEST(SpaceBoundTest, Theorem3Formula) {
  // ρ ≤ (r/P)(s+1).
  EXPECT_DOUBLE_EQ(DynSpaceBoundBytes(/*param_bytes=*/8000.0,
                                      /*num_servers=*/10,
                                      /*staleness=*/3),
                   3200.0);
}

TEST(SpaceBoundTest, ExactWindowFormula) {
  // Eq. (7): ρ = (r/P)(cmax - cmin + 1).
  EXPECT_DOUBLE_EQ(DynSpaceBytes(8000.0, 10, /*cmax=*/7, /*cmin=*/5),
                   2400.0);
  // The exact value never exceeds the Theorem 3 bound when
  // cmax - cmin <= s.
  EXPECT_LE(DynSpaceBytes(8000.0, 10, 7, 5),
            DynSpaceBoundBytes(8000.0, 10, 3));
}

TEST(SpaceBoundDeathTest, ValidatesInputs) {
  EXPECT_DEATH(DynSpaceBoundBytes(10.0, 0, 3), "server");
  EXPECT_DEATH(DynSpaceBytes(10.0, 1, 2, 5), "cmax");
}

}  // namespace
}  // namespace hetps
