#include "core/sync_policy.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

TEST(SyncPolicyTest, FactoryProtocols) {
  EXPECT_EQ(SyncPolicy::Bsp().protocol, Protocol::kBsp);
  EXPECT_EQ(SyncPolicy::Bsp().staleness, 0);
  EXPECT_EQ(SyncPolicy::Asp().protocol, Protocol::kAsp);
  EXPECT_EQ(SyncPolicy::Ssp(7).staleness, 7);
}

TEST(SyncPolicyTest, NeedsPullSspThrottle) {
  const SyncPolicy ssp = SyncPolicy::Ssp(3);
  // Algorithm 1 line 8: pull iff cp < c - s.
  EXPECT_FALSE(ssp.NeedsPull(/*clock=*/3, /*cached_cmin=*/0));
  EXPECT_TRUE(ssp.NeedsPull(/*clock=*/4, /*cached_cmin=*/0));
  EXPECT_FALSE(ssp.NeedsPull(/*clock=*/4, /*cached_cmin=*/1));
}

TEST(SyncPolicyTest, BspPullsEveryClock) {
  const SyncPolicy bsp = SyncPolicy::Bsp();
  EXPECT_TRUE(bsp.NeedsPull(1, 0));
  EXPECT_TRUE(bsp.NeedsPull(5, 4));
  EXPECT_FALSE(bsp.NeedsPull(5, 5));
}

TEST(SyncPolicyTest, AspAlwaysPullsNeverBlocks) {
  const SyncPolicy asp = SyncPolicy::Asp();
  EXPECT_TRUE(asp.NeedsPull(0, 0));
  EXPECT_TRUE(asp.NeedsPull(100, 100));
  EXPECT_TRUE(asp.CanAdvance(1000000, 0));
}

TEST(SyncPolicyTest, CanAdvanceEnforcesStalenessWindow) {
  const SyncPolicy ssp = SyncPolicy::Ssp(2);
  EXPECT_TRUE(ssp.CanAdvance(/*next_clock=*/2, /*cmin=*/0));
  EXPECT_FALSE(ssp.CanAdvance(/*next_clock=*/3, /*cmin=*/0));
  EXPECT_TRUE(ssp.CanAdvance(3, 1));
}

TEST(SyncPolicyTest, BspIsBarrier) {
  const SyncPolicy bsp = SyncPolicy::Bsp();
  EXPECT_TRUE(bsp.CanAdvance(1, 1));
  EXPECT_FALSE(bsp.CanAdvance(2, 1));
}

TEST(SyncPolicyTest, DebugStringNamesProtocol) {
  EXPECT_EQ(SyncPolicy::Bsp().DebugString(), "BSP");
  EXPECT_EQ(SyncPolicy::Ssp(4).DebugString(), "SSP(s=4)");
}

TEST(ClockTableTest, TracksPerWorkerClocks) {
  ClockTable table(3);
  EXPECT_EQ(table.cmin(), 0);
  EXPECT_EQ(table.cmax(), 0);
  table.OnPush(0, 0);
  EXPECT_EQ(table.clock(0), 1);
  EXPECT_EQ(table.cmax(), 1);
  EXPECT_EQ(table.cmin(), 0);
}

TEST(ClockTableTest, CminAdvancesWhenAllFinish) {
  ClockTable table(3);
  EXPECT_FALSE(table.OnPush(0, 0));
  EXPECT_FALSE(table.OnPush(1, 0));
  EXPECT_TRUE(table.OnPush(2, 0));
  EXPECT_EQ(table.cmin(), 1);
}

TEST(ClockTableTest, CminCatchesUpAcrossMultipleClocks) {
  ClockTable table(2);
  table.OnPush(0, 0);
  table.OnPush(0, 1);
  table.OnPush(0, 2);
  EXPECT_EQ(table.cmin(), 0);
  EXPECT_EQ(table.cmax(), 3);
  // Worker 1 jumps straight to clock 2: cmin jumps to 3.
  EXPECT_TRUE(table.OnPush(1, 2));
  EXPECT_EQ(table.cmin(), 3);
}

TEST(ClockTableTest, SingleWorkerAdvancesFreely) {
  ClockTable table(1);
  for (int c = 0; c < 5; ++c) {
    EXPECT_TRUE(table.OnPush(0, c));
    EXPECT_EQ(table.cmin(), c + 1);
  }
}

TEST(ClockTableTest, StaleOrDuplicatePushIsDroppedNotRegressed) {
  // Regression test for the monotonicity fix: under at-least-once RPC
  // delivery a retried push can re-present an old clock. The table must
  // drop it (counting it) instead of moving the worker backwards, which
  // used to let cmax regress and re-admit pulls that were already
  // rejected.
  ClockTable table(2);
  table.OnPush(0, 0);
  table.OnPush(0, 1);
  table.OnPush(1, 0);
  ASSERT_EQ(table.clock(0), 2);
  ASSERT_EQ(table.cmin(), 1);
  ASSERT_EQ(table.cmax(), 2);
  // Duplicate of clock 1 and a stale clock 0: both dropped.
  EXPECT_FALSE(table.OnPush(0, 1));
  EXPECT_FALSE(table.OnPush(0, 0));
  EXPECT_EQ(table.dropped_regressions(), 2);
  EXPECT_EQ(table.clock(0), 2);
  EXPECT_EQ(table.cmin(), 1);
  EXPECT_EQ(table.cmax(), 2);
  // Fresh pushes still advance normally afterwards.
  EXPECT_TRUE(table.OnPush(1, 1));
  EXPECT_EQ(table.cmin(), 2);
}

TEST(ClockTableTest, DroppedRegressionStartsAtZero) {
  ClockTable table(3);
  EXPECT_EQ(table.dropped_regressions(), 0);
  table.OnPush(0, 0);
  EXPECT_EQ(table.dropped_regressions(), 0);
}

TEST(ClockTableDeathTest, RejectsBadWorker) {
  ClockTable table(2);
  EXPECT_DEATH(table.OnPush(2, 0), "out of range");
  EXPECT_DEATH(ClockTable(0), "at least one worker");
}

}  // namespace
}  // namespace hetps
