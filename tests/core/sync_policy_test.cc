#include "core/sync_policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <vector>

namespace hetps {
namespace {

TEST(SyncPolicyTest, FactoryProtocols) {
  EXPECT_EQ(SyncPolicy::Bsp().protocol, Protocol::kBsp);
  EXPECT_EQ(SyncPolicy::Bsp().staleness, 0);
  EXPECT_EQ(SyncPolicy::Asp().protocol, Protocol::kAsp);
  EXPECT_EQ(SyncPolicy::Ssp(7).staleness, 7);
}

TEST(SyncPolicyTest, NeedsPullSspThrottle) {
  const SyncPolicy ssp = SyncPolicy::Ssp(3);
  // Algorithm 1 line 8: pull iff cp < c - s.
  EXPECT_FALSE(ssp.NeedsPull(/*clock=*/3, /*cached_cmin=*/0));
  EXPECT_TRUE(ssp.NeedsPull(/*clock=*/4, /*cached_cmin=*/0));
  EXPECT_FALSE(ssp.NeedsPull(/*clock=*/4, /*cached_cmin=*/1));
}

TEST(SyncPolicyTest, BspPullsEveryClock) {
  const SyncPolicy bsp = SyncPolicy::Bsp();
  EXPECT_TRUE(bsp.NeedsPull(1, 0));
  EXPECT_TRUE(bsp.NeedsPull(5, 4));
  EXPECT_FALSE(bsp.NeedsPull(5, 5));
}

TEST(SyncPolicyTest, AspAlwaysPullsNeverBlocks) {
  const SyncPolicy asp = SyncPolicy::Asp();
  EXPECT_TRUE(asp.NeedsPull(0, 0));
  EXPECT_TRUE(asp.NeedsPull(100, 100));
  EXPECT_TRUE(asp.CanAdvance(1000000, 0));
}

TEST(SyncPolicyTest, CanAdvanceEnforcesStalenessWindow) {
  const SyncPolicy ssp = SyncPolicy::Ssp(2);
  EXPECT_TRUE(ssp.CanAdvance(/*next_clock=*/2, /*cmin=*/0));
  EXPECT_FALSE(ssp.CanAdvance(/*next_clock=*/3, /*cmin=*/0));
  EXPECT_TRUE(ssp.CanAdvance(3, 1));
}

TEST(SyncPolicyTest, BspIsBarrier) {
  const SyncPolicy bsp = SyncPolicy::Bsp();
  EXPECT_TRUE(bsp.CanAdvance(1, 1));
  EXPECT_FALSE(bsp.CanAdvance(2, 1));
}

TEST(SyncPolicyTest, HugeStalenessDoesNotOverflow) {
  // Regression test for the signed-overflow fix: Asp() carries
  // staleness = INT_MAX / 2, so `cmin + staleness` evaluated in int is UB
  // once cmin exceeds INT_MAX / 2. The comparison must be done in 64-bit
  // and stay correct at the extremes (under UBSan this test also proves
  // no overflow is executed).
  const int kMax = std::numeric_limits<int>::max();
  const SyncPolicy wide = SyncPolicy::Ssp(kMax / 2);
  EXPECT_TRUE(wide.CanAdvance(/*next_clock=*/kMax, /*cmin=*/kMax / 2 + 1));
  EXPECT_FALSE(wide.CanAdvance(/*next_clock=*/kMax, /*cmin=*/kMax / 2 - 1));
  // Boundary: next_clock == cmin + staleness exactly.
  EXPECT_TRUE(wide.CanAdvance(kMax - 1, kMax / 2));
  // NeedsPull subtracts the staleness: `cached_cmin < clock - s` with
  // clock near INT_MIN-distance must not wrap either.
  EXPECT_FALSE(wide.NeedsPull(/*clock=*/0, /*cached_cmin=*/0));
  EXPECT_TRUE(wide.NeedsPull(/*clock=*/kMax, /*cmin=*/kMax / 2 - 1));
}

TEST(SyncPolicyTest, DebugStringNamesProtocol) {
  EXPECT_EQ(SyncPolicy::Bsp().DebugString(), "BSP");
  EXPECT_EQ(SyncPolicy::Ssp(4).DebugString(), "SSP(s=4)");
}

TEST(ClockTableTest, TracksPerWorkerClocks) {
  ClockTable table(3);
  EXPECT_EQ(table.cmin(), 0);
  EXPECT_EQ(table.cmax(), 0);
  table.OnPush(0, 0);
  EXPECT_EQ(table.clock(0), 1);
  EXPECT_EQ(table.cmax(), 1);
  EXPECT_EQ(table.cmin(), 0);
}

TEST(ClockTableTest, CminAdvancesWhenAllFinish) {
  ClockTable table(3);
  EXPECT_FALSE(table.OnPush(0, 0));
  EXPECT_FALSE(table.OnPush(1, 0));
  EXPECT_TRUE(table.OnPush(2, 0));
  EXPECT_EQ(table.cmin(), 1);
}

TEST(ClockTableTest, CminCatchesUpAcrossMultipleClocks) {
  ClockTable table(2);
  table.OnPush(0, 0);
  table.OnPush(0, 1);
  table.OnPush(0, 2);
  EXPECT_EQ(table.cmin(), 0);
  EXPECT_EQ(table.cmax(), 3);
  // Worker 1 jumps straight to clock 2: cmin jumps to 3.
  EXPECT_TRUE(table.OnPush(1, 2));
  EXPECT_EQ(table.cmin(), 3);
}

TEST(ClockTableTest, SingleWorkerAdvancesFreely) {
  ClockTable table(1);
  for (int c = 0; c < 5; ++c) {
    EXPECT_TRUE(table.OnPush(0, c));
    EXPECT_EQ(table.cmin(), c + 1);
  }
}

TEST(ClockTableTest, StaleOrDuplicatePushIsDroppedNotRegressed) {
  // Regression test for the monotonicity fix: under at-least-once RPC
  // delivery a retried push can re-present an old clock. The table must
  // drop it (counting it) instead of moving the worker backwards, which
  // used to let cmax regress and re-admit pulls that were already
  // rejected.
  ClockTable table(2);
  table.OnPush(0, 0);
  table.OnPush(0, 1);
  table.OnPush(1, 0);
  ASSERT_EQ(table.clock(0), 2);
  ASSERT_EQ(table.cmin(), 1);
  ASSERT_EQ(table.cmax(), 2);
  // Duplicate of clock 1 and a stale clock 0: both dropped.
  EXPECT_FALSE(table.OnPush(0, 1));
  EXPECT_FALSE(table.OnPush(0, 0));
  EXPECT_EQ(table.dropped_regressions(), 2);
  EXPECT_EQ(table.clock(0), 2);
  EXPECT_EQ(table.cmin(), 1);
  EXPECT_EQ(table.cmax(), 2);
  // Fresh pushes still advance normally afterwards.
  EXPECT_TRUE(table.OnPush(1, 1));
  EXPECT_EQ(table.cmin(), 2);
}

TEST(ClockTableTest, DroppedRegressionStartsAtZero) {
  ClockTable table(3);
  EXPECT_EQ(table.dropped_regressions(), 0);
  table.OnPush(0, 0);
  EXPECT_EQ(table.dropped_regressions(), 0);
}

TEST(ClockTableDeathTest, RejectsBadWorker) {
  ClockTable table(2);
  EXPECT_DEATH(table.OnPush(2, 0), "out of range");
  EXPECT_DEATH(ClockTable(0), "at least one worker");
}

TEST(ClockTableTest, EvictRepairsCmin) {
  // The liveness hole: worker 2 dies at clock 0 while 0 and 1 run ahead,
  // pinning cmin at 0. Eviction must recompute cmin over the survivors.
  ClockTable table(3);
  for (int c = 0; c < 3; ++c) {
    table.OnPush(0, c);
    table.OnPush(1, c);
  }
  ASSERT_EQ(table.cmin(), 0);
  ASSERT_EQ(table.cmax(), 3);
  EXPECT_TRUE(table.EvictWorker(2));  // true: cmin advanced
  EXPECT_FALSE(table.is_live(2));
  EXPECT_EQ(table.num_live(), 2);
  EXPECT_EQ(table.cmin(), 3);
  EXPECT_EQ(table.cmax(), 3);  // never lowered
  // Evicting again is a no-op.
  EXPECT_FALSE(table.EvictWorker(2));
}

TEST(ClockTableTest, EvictWithoutRepairReturnsFalse) {
  // Evicting a worker that was not the (sole) cmin holder leaves cmin
  // untouched: the repair signal must be false so callers don't spuriously
  // wake admission waiters.
  ClockTable table(3);
  table.OnPush(0, 0);  // workers 1 and 2 both still at clock 0
  EXPECT_FALSE(table.EvictWorker(0));
  EXPECT_EQ(table.cmin(), 0);
  EXPECT_FALSE(table.is_live(0));
}

TEST(ClockTableTest, EvictLastLiveWorkerRefused) {
  ClockTable table(2);
  EXPECT_FALSE(table.EvictWorker(0));
  EXPECT_FALSE(table.EvictWorker(1));  // refused: would empty the set
  EXPECT_TRUE(table.is_live(1));
  EXPECT_EQ(table.num_live(), 1);
}

TEST(ClockTableTest, EvictedPushIsDroppedAndCounted) {
  ClockTable table(2);
  table.OnPush(0, 0);
  table.EvictWorker(1);
  ASSERT_EQ(table.cmin(), 1);
  // A late push from the evicted worker (e.g. an RPC already in flight
  // when the sweeper fired) must not advance its clock or perturb cmin.
  EXPECT_FALSE(table.OnPush(1, 0));
  EXPECT_EQ(table.evicted_drops(), 1);
  EXPECT_EQ(table.clock(1), 0);
  EXPECT_EQ(table.cmin(), 1);
  EXPECT_EQ(table.dropped_regressions(), 0);  // distinct counters
}

TEST(ClockTableTest, ReadmitRejoinsAtFrontier) {
  ClockTable table(2);
  for (int c = 0; c < 4; ++c) table.OnPush(0, c);
  table.EvictWorker(1);
  ASSERT_EQ(table.cmin(), 4);
  // Already live: a rejection, not a crash (no-op on the table).
  EXPECT_EQ(table.ReadmitWorker(0, 5),
            ClockTable::ReadmitResult::kAlreadyLive);
  EXPECT_EQ(table.ReadmitWorker(1, 4),
            ClockTable::ReadmitResult::kReadmitted);
  EXPECT_TRUE(table.is_live(1));
  EXPECT_EQ(table.num_live(), 2);
  EXPECT_EQ(table.clock(1), 4);
  EXPECT_EQ(table.cmin(), 4);
  // The readmitted worker pins cmin again until it pushes.
  table.OnPush(0, 4);
  EXPECT_EQ(table.cmin(), 4);
  EXPECT_TRUE(table.OnPush(1, 4));
  EXPECT_EQ(table.cmin(), 5);
}

// Regression: a rejoin clock behind cmin used to hard-CHECK and abort
// the server. The clock is client-controlled input (it arrives over the
// kReadmit RPC), so it must be *rejected* — table untouched — and mapped
// to FailedPrecondition by the RPC layer, never crash the process.
TEST(ClockTableTest, ReadmitBehindCminIsRejectedNotFatal) {
  ClockTable table(2);
  for (int c = 0; c < 3; ++c) table.OnPush(0, c);
  table.EvictWorker(1);
  ASSERT_EQ(table.cmin(), 3);
  EXPECT_EQ(table.ReadmitWorker(1, 2),
            ClockTable::ReadmitResult::kBehindCmin);
  // The rejection left the table untouched: still evicted, cmin intact.
  EXPECT_FALSE(table.is_live(1));
  EXPECT_EQ(table.num_live(), 1);
  EXPECT_EQ(table.cmin(), 3);
  // A valid retry at the frontier then succeeds.
  EXPECT_EQ(table.ReadmitWorker(1, 3),
            ClockTable::ReadmitResult::kReadmitted);
  EXPECT_TRUE(table.is_live(1));
}

TEST(ClockTableTest, RestoreRevivesEvictedWorkers) {
  ClockTable table(3);
  table.OnPush(0, 0);
  table.OnPush(1, 0);
  table.EvictWorker(2);
  ASSERT_EQ(table.num_live(), 2);
  table.Restore({1, 1, 1});
  EXPECT_EQ(table.num_live(), 3);
  EXPECT_TRUE(table.is_live(2));
  EXPECT_EQ(table.cmin(), 1);
  EXPECT_EQ(table.cmax(), 1);
}

// Property test: a randomized interleaving of pushes, evictions and
// readmissions must preserve the table invariants the admission gate and
// version stamps depend on — cmin <= cmax, cmin == min over live clocks,
// cmin monotone non-decreasing, cmax monotone non-decreasing.
TEST(ClockTableTest, EvictReadmitPropertyRandomized) {
  std::mt19937 rng(20260807);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 4);
    ClockTable table(n);
    int last_cmin = table.cmin();
    int last_cmax = table.cmax();
    for (int step = 0; step < 400; ++step) {
      const int w = static_cast<int>(rng() % n);
      const int op = static_cast<int>(rng() % 10);
      if (op < 7) {
        // Push the worker's next clock (evicted workers' pushes model
        // in-flight RPCs from the dead node: dropped).
        table.OnPush(w, table.clock(w));
      } else if (op < 9) {
        table.EvictWorker(w);
      } else if (!table.is_live(w)) {
        ASSERT_EQ(
            table.ReadmitWorker(w, std::max(table.clock(w), table.cmin())),
            ClockTable::ReadmitResult::kReadmitted);
      }
      ASSERT_LE(table.cmin(), table.cmax());
      ASSERT_GE(table.cmin(), last_cmin) << "cmin regressed";
      ASSERT_GE(table.cmax(), last_cmax) << "cmax regressed";
      ASSERT_GE(table.num_live(), 1);
      int min_live = std::numeric_limits<int>::max();
      for (int m = 0; m < n; ++m) {
        if (table.is_live(m)) min_live = std::min(min_live, table.clock(m));
      }
      ASSERT_EQ(table.cmin(), min_live);
      last_cmin = table.cmin();
      last_cmax = table.cmax();
    }
  }
}

}  // namespace
}  // namespace hetps
