#include "core/dyn_sgd.h"

#include <gtest/gtest.h>

namespace hetps {
namespace {

SparseVector U(double value) {
  return SparseVector({0}, {value});
}

DynSgdRule::Options Alg2Options() {
  DynSgdRule::Options o;
  o.version_mode = DynSgdRule::VersionMode::kAlgorithm2;
  return o;
}

// Appendix C's revision example, replayed verbatim in Algorithm-2 mode
// with scalar updates a=1, b=2, c=4, d=16, e=8, f=32, g=64.
TEST(DynSgdAlgorithm2Test, AppendixCRevisionExample) {
  DynSgdRule rule(Alg2Options());
  rule.Reset(1, 4);
  ParamBlock w(1);

  rule.OnPush(/*W1*/ 0, 0, U(1.0), &w);   // a -> u(PS,0)=a
  EXPECT_DOUBLE_EQ(w.At(0), 1.0);
  rule.OnPush(0, 1, U(2.0), &w);          // b -> u(PS,1)=b
  EXPECT_DOUBLE_EQ(w.At(0), 3.0);
  rule.OnPush(/*W2*/ 1, 0, U(4.0), &w);   // c revises u(PS,0)=(a+c)/2
  EXPECT_DOUBLE_EQ(w.At(0), 2.5 + 2.0);
  rule.OnPush(/*W3*/ 2, 0, U(16.0), &w);  // d -> u(PS,0)=(a+c+d)/3
  EXPECT_DOUBLE_EQ(w.At(0), 7.0 + 2.0);
  rule.OnPush(0, 2, U(8.0), &w);          // e -> u(PS,2)=e
  EXPECT_DOUBLE_EQ(w.At(0), 17.0);

  // Step 4 of the example: W2 pulls (a+c+d)/3 + b + e and V(W2) <- 3.
  EXPECT_DOUBLE_EQ(rule.Materialize(w)[0], 17.0);
  rule.OnPull(1, /*cmax=*/3);
  EXPECT_EQ(rule.WorkerVersion(1), 3);

  rule.OnPush(/*W4*/ 3, 0, U(32.0), &w);  // f -> u(PS,0)=(a+c+d+f)/4
  EXPECT_DOUBLE_EQ(w.At(0), 53.0 / 4.0 + 10.0);
  rule.OnPush(1, 1, U(64.0), &w);         // g -> u(PS,3)=g
  EXPECT_DOUBLE_EQ(w.At(0), 53.0 / 4.0 + 10.0 + 64.0);
}

TEST(DynSgdAlgorithm2Test, StalenessCountsSharedVersions) {
  DynSgdRule rule(Alg2Options());
  rule.Reset(1, 3);
  ParamBlock w(1);
  rule.OnPush(0, 0, U(1.0), &w);
  EXPECT_EQ(rule.StalenessOf(0), 2);  // S(0) after the first push
  rule.OnPush(1, 0, U(1.0), &w);
  EXPECT_EQ(rule.StalenessOf(0), 3);
  rule.OnPush(2, 0, U(1.0), &w);
  // All three workers passed version 0 -> evicted.
  EXPECT_EQ(rule.StalenessOf(0), 0);
  EXPECT_EQ(rule.ActiveVersionCount(), 0u);
}

TEST(DynSgdClockAlignedTest, SameClockSharesVersion) {
  DynSgdRule rule;  // default clock-aligned
  rule.Reset(1, 3);
  ParamBlock w(1);
  rule.OnPush(0, 0, U(3.0), &w);
  EXPECT_DOUBLE_EQ(w.At(0), 3.0);  // first update at full weight
  rule.OnPush(1, 0, U(9.0), &w);
  EXPECT_DOUBLE_EQ(w.At(0), 6.0);  // revised to the mean (3+9)/2
  rule.OnPush(2, 0, U(6.0), &w);
  EXPECT_DOUBLE_EQ(w.At(0), 6.0);  // (3+9+6)/3
}

TEST(DynSgdClockAlignedTest, StragglerJoinsOldVersionAtLowWeight) {
  DynSgdRule rule;
  rule.Reset(1, 3);
  ParamBlock w(1);
  // Workers 0 and 1 push clocks 0 and 1; straggler (2) still at clock 0.
  rule.OnPush(0, 0, U(1.0), &w);
  rule.OnPush(1, 0, U(1.0), &w);
  rule.OnPush(0, 1, U(1.0), &w);
  rule.OnPush(1, 1, U(1.0), &w);
  const double before = w.At(0);
  // The straggler's huge delayed update lands on version 0 with
  // staleness 3: only a third of it is applied.
  rule.OnPush(2, 0, U(30.0), &w);
  // w gains (30 - mean(1,1))/3 = 29/3 - ... exactly:
  // u(PS,0) was 1; Δ = (30 - 1)/3.
  EXPECT_NEAR(w.At(0) - before, (30.0 - 1.0) / 3.0, 1e-12);
  EXPECT_LT(w.At(0) - before, 30.0 / 2.0);
}

TEST(DynSgdClockAlignedTest, EvictionWindowIsCmaxMinusCmin) {
  DynSgdRule rule;
  rule.Reset(1, 2);
  ParamBlock w(1);
  // Worker 0 races ahead; worker 1 stays at clock 0 -> nothing evicted.
  for (int c = 0; c < 5; ++c) rule.OnPush(0, c, U(1.0), &w);
  EXPECT_EQ(rule.ActiveVersionCount(), 5u);
  // Worker 1 finishes clocks 0..3 -> versions 0..3 evicted.
  for (int c = 0; c < 4; ++c) rule.OnPush(1, c, U(1.0), &w);
  EXPECT_EQ(rule.ActiveVersionCount(), 1u);
  EXPECT_EQ(rule.StalenessOf(4), 2);  // version 4 live, one push
}

TEST(DynSgdClockAlignedTest, EvictionPreservesParameterInImmediateMode) {
  DynSgdRule rule;
  rule.Reset(1, 2);
  ParamBlock w(1);
  rule.OnPush(0, 0, U(2.0), &w);
  rule.OnPush(1, 0, U(4.0), &w);  // version 0 evicted after this push
  EXPECT_EQ(rule.ActiveVersionCount(), 0u);
  EXPECT_DOUBLE_EQ(w.At(0), 3.0);  // mean survived eviction
}

TEST(DynSgdDeferredTest, BaseParameterUntouchedUntilEviction) {
  DynSgdRule::Options opts;
  opts.mode = DynSgdRule::ApplyMode::kDeferred;
  DynSgdRule rule(opts);
  rule.Reset(1, 2);
  ParamBlock w(1);
  rule.OnPush(0, 0, U(2.0), &w);
  EXPECT_DOUBLE_EQ(w.At(0), 0.0);  // not applied yet
  EXPECT_DOUBLE_EQ(rule.Materialize(w)[0], 2.0);  // but readable
  rule.OnPush(1, 0, U(4.0), &w);  // eviction folds version 0 into w
  EXPECT_DOUBLE_EQ(w.At(0), 3.0);
  EXPECT_DOUBLE_EQ(rule.Materialize(w)[0], 3.0);
}

TEST(DynSgdDeferredTest, MaterializeAtVersionGivesSnapshots) {
  DynSgdRule::Options opts;
  opts.mode = DynSgdRule::ApplyMode::kDeferred;
  DynSgdRule rule(opts);
  rule.Reset(1, 3);
  ParamBlock w(1);
  rule.OnPush(0, 0, U(3.0), &w);   // version 0
  rule.OnPush(0, 1, U(10.0), &w);  // version 1
  EXPECT_DOUBLE_EQ(rule.MaterializeAtVersion(w, 0)[0], 0.0);
  EXPECT_DOUBLE_EQ(rule.MaterializeAtVersion(w, 1)[0], 3.0);
  EXPECT_DOUBLE_EQ(rule.MaterializeAtVersion(w, 2)[0], 13.0);
  EXPECT_EQ(rule.CurrentVersion(), 2);
}

TEST(DynSgdTest, CompletedVersionCountIsMinWorkerProgress) {
  DynSgdRule rule;
  rule.Reset(1, 3);
  ParamBlock w(1);
  EXPECT_EQ(rule.CompletedVersionCount(), 0);
  rule.OnPush(0, 0, U(1.0), &w);
  rule.OnPush(0, 1, U(1.0), &w);
  rule.OnPush(1, 0, U(1.0), &w);
  EXPECT_EQ(rule.CompletedVersionCount(), 0);  // worker 2 at clock 0
  rule.OnPush(2, 0, U(1.0), &w);
  EXPECT_EQ(rule.CompletedVersionCount(), 1);
  EXPECT_EQ(rule.LiveVersionCount(), 1u);  // version 0 evicted
}

TEST(DynSgdTest, LiveVersionCountTracksActiveVersions) {
  DynSgdRule rule;
  rule.Reset(1, 2);
  ParamBlock w(1);
  EXPECT_EQ(rule.LiveVersionCount(), 0u);
  rule.OnPush(0, 0, U(1.0), &w);
  rule.OnPush(0, 1, U(1.0), &w);
  rule.OnPush(0, 2, U(1.0), &w);
  EXPECT_EQ(rule.LiveVersionCount(), 3u);
  rule.OnPush(1, 0, U(1.0), &w);
  rule.OnPush(1, 1, U(1.0), &w);
  EXPECT_EQ(rule.LiveVersionCount(), 1u);
}

TEST(DynSgdTest, ObservedMeanStalenessTracksD) {
  DynSgdRule rule;
  rule.Reset(1, 2);
  ParamBlock w(1);
  rule.OnPush(0, 0, U(1.0), &w);  // d=1
  rule.OnPush(1, 0, U(1.0), &w);  // d=2
  EXPECT_DOUBLE_EQ(rule.ObservedMeanStaleness(), 1.5);
}

TEST(DynSgdTest, AuxMemoryGrowsWithLiveVersionsAndShrinksOnEviction) {
  DynSgdRule rule;
  rule.Reset(64, 2);
  ParamBlock w(64);
  SparseVector update({0, 5, 9}, {1.0, 1.0, 1.0});
  for (int c = 0; c < 4; ++c) rule.OnPush(0, c, update, &w);
  const size_t with_four = rule.AuxMemoryBytes();
  for (int c = 0; c < 3; ++c) rule.OnPush(1, c, update, &w);
  EXPECT_LT(rule.AuxMemoryBytes(), with_four);
}

TEST(DynSgdTest, FilterDropsTinySummaryEntries) {
  DynSgdRule::Options filtered_opts;
  filtered_opts.filter_epsilon = 1e-6;
  filtered_opts.compact_every = 1;
  DynSgdRule filtered(filtered_opts);
  DynSgdRule::Options plain_opts;
  plain_opts.compact_every = 0;
  DynSgdRule plain(plain_opts);
  filtered.Reset(8, 2);
  plain.Reset(8, 2);
  ParamBlock wf(8);
  ParamBlock wp(8);
  const SparseVector u({0, 1, 2, 3}, {1e-9, 0.5, 1e-8, 1e-7});
  filtered.OnPush(0, 0, u, &wf);
  plain.OnPush(0, 0, u, &wp);
  // The filtered summary dropped three of the four entries.
  EXPECT_LT(filtered.AuxMemoryBytes(), plain.AuxMemoryBytes());
}

TEST(DynSgdTest, CloneCopiesOptionsNotState) {
  DynSgdRule::Options opts;
  opts.mode = DynSgdRule::ApplyMode::kDeferred;
  DynSgdRule rule(opts);
  rule.Reset(1, 2);
  ParamBlock w(1);
  rule.OnPush(0, 0, U(1.0), &w);
  auto clone = rule.Clone();
  clone->Reset(1, 2);
  EXPECT_EQ(static_cast<DynSgdRule*>(clone.get())->ActiveVersionCount(),
            0u);
}

TEST(DynSgdDeathTest, PushBeforeResetDies) {
  DynSgdRule rule;
  ParamBlock w(1);
  EXPECT_DEATH(rule.OnPush(0, 0, U(1.0), &w), "out of range");
}

}  // namespace
}  // namespace hetps
